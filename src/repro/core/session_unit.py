"""Session-as-a-unit: per-client server state with a serializable edge.

A :class:`SessionUnit` is everything the server holds for one client —
the scheduler-backed command buffer, the framing/encryption tail, the
control and audio queues, the flush machinery and the per-session
counters — behind an explicit state surface.  The surface has two
halves:

* **live half** — references into the owning shard's shared planes
  (event loop, prepare plane, governor) plus the transport endpoint;
  re-established whenever the unit lands on a host; and
* **frozen half** — :class:`FrozenSession`, the byte-serializable
  residue of the unit: geometry and view transform, sequencing marks,
  the resilience journal, the buffered command queue, pending resync /
  control frames and the counters.  ``freeze()`` captures it;
  ``THINCServer.thaw_session`` rebuilds a live unit from it on any
  shard sharing the simulation clock.

Freeze/thaw is the primitive under live migration in
:mod:`repro.cluster`: a frozen session crosses the shard fabric inside
a ``SESSION_TRANSFER`` frame, and the client reconnects through the
same detach/resync path it would use after a network fault — migration
is deliberately *not* a new recovery mechanism, just a new reason to
detach.  Commands already scheduled against the frozen unit (prepare
completions in flight) are forwarded to the thawed successor via
:meth:`SessionUnit.forward_to`, so no pixels are lost mid-migration.
"""

from __future__ import annotations

import struct
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Tuple

from ..display.driver import InputEvent
from ..net.transport import Connection
from ..protocol import wire
from ..protocol.commands import Command
from ..protocol.limits import LIMITS
from ..protocol.rc4 import RC4
from ..protocol.spec import SERVER_ACCEPTS
from ..region import Rect
from . import pipeline
from . import sanitizer as _sanitizer
from .delivery import ClientBuffer
from .resize import DisplayScaler

__all__ = ["SessionUnit", "FrozenSession", "FLUSH_INTERVAL",
           "NOT_SERIALIZED"]

FLUSH_INTERVAL = 0.002  # seconds between flush periods while backlogged

#: Mutable :class:`SessionUnit` attributes deliberately *absent* from
#: the :meth:`SessionUnit.freeze` surface, each with the reason it is
#: safe to drop across a migration.  THL204 in
#: :mod:`repro.analysis.contracts` fails the build when an attribute is
#: assigned on the unit but neither captured by ``freeze()`` nor listed
#: here — adding session state means deciding, explicitly, whether it
#: migrates.
NOT_SERIALIZED = {
    "server": "host binding; the thaw target supplies its own",
    "loop": "host binding; every shard shares the simulated clock",
    "_encrypt_key": "keys never cross the fabric; the reconnect "
                    "handshake re-keys on the target shard",
    "frame_stage": "holds the RC4 keystream position, which is "
                   "worthless after the re-key; rebuilt on thaw",
    "journal": "a callable installed by the target plane's adopt(), "
               "not data (the journalled frames themselves migrate)",
    "detached": "a frozen unit is detached by definition; thaw "
                "rebuilds the unit detached until the client redials",
    "quarantined": "governor verdicts are host-local; an abusive "
                   "session is evicted, never migrated",
    "meter": "governor budgets are per-host capacity, not session "
             "state; the target's governor meters from zero",
    "_successor": "forwarding pointer only meaningful on the frozen "
                  "husk left behind on the source shard",
    "_audio": "audio is useless late (the paper sheds it first); a "
              "migration pause always exceeds its freshness window",
    "_audio_bytes": "gauge over _audio, which is dropped",
    "_control_bytes": "gauge over _control, recomputed on thaw",
    "_flush_scheduled": "transient event-loop bookkeeping; a detached "
                        "unit never flushes",
    "_parser": "uplink parse state dies with the severed connection; "
               "reset_parser() starts the successor clean",
}


class _SessionWriter:
    """The session's write-side proxy over the transport endpoint.

    Three concerns live here rather than in the framing stage so they
    happen only for bytes that actually reach the socket:

    * **encryption** — frames are plaintext until written (framing a
      split head that then fails the fit check must not consume RC4
      keystream, and journaled frames must be re-encryptable under a
      fresh key after a reconnect);
    * **sequencing** — resilient sessions wrap every outgoing frame in
      a CHECKED wrapper whose sequence number is assigned in *send*
      order, so the client's cumulative ack and the replay log agree
      byte-for-byte about what the client may have seen; and
    * **journaling** — each wrapped plaintext frame is handed to the
      resilience plane's per-session log before encryption.

    ``writable_bytes`` subtracts the wrapper overhead so the flush
    stage's size arithmetic keeps working unchanged.
    """

    def __init__(self, session: "SessionUnit", sequenced: bool):
        self.session = session
        self.sequenced = sequenced
        self.overhead = wire.CHECKED_OVERHEAD if sequenced else 0
        self.last_seq = 0
        self.total_bytes = 0

    def _endpoint(self):
        return self.session.connection.down

    def writable_bytes(self) -> int:
        return max(0, self._endpoint().writable_bytes() - self.overhead)

    def write(self, data: bytes) -> None:
        if self.sequenced:
            self.last_seq += 1
            data = wire.wrap_checked(data, self.last_seq)
            if self.session.journal is not None:
                self.session.journal(self.last_seq, data)
        self.total_bytes += len(data)
        self._endpoint().write(self.session.frame_stage.encrypt(data))

    def write_prewrapped(self, data: bytes) -> None:
        """Write an already-wrapped frame (resync replay): encrypt
        only — it carries its original sequence number and is already
        in the journal."""
        self.total_bytes += len(data)
        self._endpoint().write(self.session.frame_stage.encrypt(data))

    def prewrapped_writable(self) -> int:
        return self._endpoint().writable_bytes()


# FrozenSession wire layout, version 2 (v2 appended the QoS ladder
# rung after the counters).  All integers big-endian.
_FROZEN_VERSION = 2
_HEAD = struct.Struct(">BIHH")      # version, token, viewport w, h
_VIEW = struct.Struct(">HHHH")      # scaler view rect x, y, w, h
_MARKS = struct.Struct(">BIId")     # flags, last_seq, acked_seq, pipe_tail
_COUNTERS = struct.Struct(">IQIIIIId")
_QOS = struct.Struct(">B")          # video degradation ladder rung
_U32 = struct.Struct(">I")
_ENTRY = struct.Struct(">II")       # journal entry: seq, byte length

# Flag bits in _MARKS.
_F_SEQUENCED = 1
_F_DEGRADED = 2
_F_SHED_DISPLAY = 4
_F_LOG_DROPPED = 8
_F_QUEUE_DROPPED = 16
_F_SUBSCRIBED = 32
_F_TILE = 64

#: ``stats`` keys serialized by _COUNTERS, in pack order (cpu_time is
#: the trailing double).
_COUNTER_KEYS = ("messages_sent", "bytes_sent", "flush_periods",
                 "audio_dropped", "display_shed", "uplink_dropped",
                 "wire_errors")


class _Cursor:
    """Bounds-checked reader over a frozen-session blob: any read past
    the end raises a typed ProtocolError, never IndexError/struct.error."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int, what: str) -> bytes:
        if n < 0 or self.pos + n > len(self.data):
            raise wire.TruncatedPayloadError(
                f"frozen session truncated in {what}")
        chunk = self.data[self.pos:self.pos + n]
        self.pos += n
        return chunk

    def unpack(self, st: struct.Struct, what: str) -> tuple:
        return st.unpack(self.take(st.size, what))


@dataclass(frozen=True)
class FrozenSession:
    """The serializable state surface of one :class:`SessionUnit`.

    Everything a peer shard needs to continue the session is here;
    everything that is not is deliberately re-derived on thaw:

    * the RC4 keystream restarts on rebind (the journal holds
      *plaintext* frames, re-encrypted under the fresh key — the same
      contract the reconnect path already relies on);
    * SRSF scheduling order is re-derived by re-adding the queued
      commands in arrival order (scheduling is a pure function of the
      queue plus input recency, and input recency does not survive a
      detach window anyway);
    * the audio backlog is dropped (late audio is worthless — the
      session is detached for the whole transfer); and
    * governor meter position (token bucket, ladder state) restarts,
      while the abuse tallies ride along in ``stats``.
    """

    token: int
    viewport: Tuple[int, int]
    view_rect: Rect
    sequenced: bool
    degraded: bool
    shed_display: bool
    log_dropped: bool
    queue_dropped: bool
    last_seq: int
    acked_seq: int
    pipe_tail: float
    journal: Tuple[Tuple[int, bytes], ...]
    commands: Tuple[bytes, ...]
    replay: Tuple[bytes, ...]
    control: Tuple[bytes, ...]
    stats: Dict[str, float]
    # Broadcast fan-out membership (flag bits in _MARKS; relay-side
    # state itself is plane-owned and re-derived on thaw): whether the
    # unit was subscribed, and whether as a tile-wall member (whose
    # rectangle is exactly ``view_rect``).
    subscribed: bool = False
    tile_mode: bool = False
    # Video degradation ladder position (repro.core.qos).  The rung is
    # the only QoS state that migrates: hysteresis counters and poll
    # clocks are plane-owned and re-derived from live measurements on
    # the target shard.
    qos_rung: int = 0

    def to_bytes(self) -> bytes:
        """Serialize for a SESSION_TRANSFER frame (bounded by
        ``LIMITS.max_transfer_bytes``; an honest session's journal and
        queue are budget-bounded far below it)."""
        flags = 0
        if self.sequenced:
            flags |= _F_SEQUENCED
        if self.degraded:
            flags |= _F_DEGRADED
        if self.shed_display:
            flags |= _F_SHED_DISPLAY
        if self.log_dropped:
            flags |= _F_LOG_DROPPED
        if self.queue_dropped:
            flags |= _F_QUEUE_DROPPED
        if self.subscribed:
            flags |= _F_SUBSCRIBED
        if self.tile_mode:
            flags |= _F_TILE
        view = self.view_rect
        out = [
            _HEAD.pack(_FROZEN_VERSION, self.token, *self.viewport),
            _VIEW.pack(view.x, view.y, view.width, view.height),
            _MARKS.pack(flags, self.last_seq, self.acked_seq,
                        self.pipe_tail),
            _COUNTERS.pack(
                *(int(self.stats.get(k, 0)) for k in _COUNTER_KEYS),
                float(self.stats.get("cpu_time", 0.0))),
            _QOS.pack(self.qos_rung),
        ]
        out.append(_U32.pack(len(self.journal)))
        for seq, data in self.journal:
            out.append(_ENTRY.pack(seq, len(data)))
            out.append(data)
        for section in (self.commands, self.replay, self.control):
            out.append(_U32.pack(len(section)))
            for data in section:
                out.append(_U32.pack(len(data)))
                out.append(data)
        blob = b"".join(out)
        if len(blob) > LIMITS.max_transfer_bytes:
            raise wire.FrameTooLargeError(
                f"frozen session is {len(blob)} bytes "
                f"(> {LIMITS.max_transfer_bytes})")
        return blob

    @classmethod
    def from_bytes(cls, data: bytes) -> "FrozenSession":
        """Decode a transfer blob; malformed input raises a
        :class:`~repro.protocol.wire.ProtocolError` subclass."""
        cur = _Cursor(data)
        version, token, vw, vh = cur.unpack(_HEAD, "header")
        if version != _FROZEN_VERSION:
            raise wire.FieldRangeError(
                f"frozen session version {version} "
                f"(expected {_FROZEN_VERSION})")
        if not (1 <= vw <= LIMITS.max_viewport_dim
                and 1 <= vh <= LIMITS.max_viewport_dim):
            raise wire.FieldRangeError(
                f"frozen viewport {vw}x{vh} out of range")
        vx, vy, vrw, vrh = cur.unpack(_VIEW, "view rect")
        if vrw == 0 or vrh == 0:
            raise wire.FieldRangeError("frozen view rect is empty")
        flags, last_seq, acked_seq, pipe_tail = cur.unpack(_MARKS, "marks")
        if pipe_tail != pipe_tail or pipe_tail in (float("inf"),
                                                   float("-inf")):
            raise wire.FieldRangeError("frozen pipe tail is not finite")
        counters = cur.unpack(_COUNTERS, "counters")
        stats = dict(zip(_COUNTER_KEYS, counters[:-1]))
        stats["cpu_time"] = counters[-1]
        (qos_rung,) = cur.unpack(_QOS, "qos rung")
        if qos_rung > LIMITS.max_qos_rung:
            raise wire.FieldRangeError(
                f"frozen qos rung {qos_rung} "
                f"(> {LIMITS.max_qos_rung})")
        (count,) = cur.unpack(_U32, "journal count")
        journal = []
        for _ in range(count):
            seq, length = cur.unpack(_ENTRY, "journal entry")
            journal.append((seq, cur.take(length, "journal frame")))
        sections = []
        for what in ("command", "replay", "control"):
            (count,) = cur.unpack(_U32, f"{what} count")
            entries = []
            for _ in range(count):
                (length,) = cur.unpack(_U32, f"{what} length")
                entries.append(cur.take(length, f"{what} bytes"))
            sections.append(tuple(entries))
        if cur.pos != len(data):
            raise wire.FieldRangeError(
                f"{len(data) - cur.pos} trailing bytes after "
                f"frozen session")
        return cls(
            token=token,
            viewport=(vw, vh),
            view_rect=Rect(vx, vy, vrw, vrh),
            sequenced=bool(flags & _F_SEQUENCED),
            degraded=bool(flags & _F_DEGRADED),
            shed_display=bool(flags & _F_SHED_DISPLAY),
            log_dropped=bool(flags & _F_LOG_DROPPED),
            queue_dropped=bool(flags & _F_QUEUE_DROPPED),
            subscribed=bool(flags & _F_SUBSCRIBED),
            tile_mode=bool(flags & _F_TILE),
            last_seq=last_seq,
            acked_seq=acked_seq,
            pipe_tail=pipe_tail,
            journal=tuple(journal),
            commands=sections[0],
            replay=sections[1],
            control=sections[2],
            stats=stats,
            qos_rung=qos_rung,
        )


def _fanout_membership(unit) -> Tuple[bool, bool]:
    """Freeze-time hand-off to the broadcast plane.

    Force-drains the unit's relay queue into its buffer (the backlog
    bound must not strand pinned entries on the source shard) and
    reports ``(subscribed, tile_mode)`` for the frozen flag bits.  The
    relay queue itself is never serialized — its content just became
    ordinary buffered commands, and membership is re-derived on thaw.
    """
    fanout = getattr(unit.server, "fanout", None)
    if fanout is None:
        return False, False
    fanout.flush(unit)
    return fanout.is_subscriber(unit), fanout.is_tile(unit)


class SessionUnit:
    """Per-client server state: buffer/schedule, frame/encrypt, flush.

    Scaling and compression live on the server's shared prepare plane;
    the session only receives already-prepared commands through
    :meth:`enqueue_prepared`.

    Constructed with ``connection=None`` the unit starts detached (the
    thaw path: a migrated session has no socket until its client
    redials); ``greet=False`` suppresses the initial SCREEN_INIT (the
    client already holds the geometry from before the freeze).
    """

    def __init__(self, server, connection: Optional[Connection],
                 viewport=None, encrypt_key: Optional[bytes] = None,
                 sequenced: bool = False, greet: bool = True):
        self.server = server
        self.connection = connection
        self.loop = server.loop
        self.viewport = viewport or (server.width, server.height)
        self.scaler = DisplayScaler((server.width, server.height),
                                    self.viewport)
        self._encrypt_key = encrypt_key
        self.frame_stage = pipeline.FrameStage(
            RC4(encrypt_key) if encrypt_key else None)
        self.buffer = ClientBuffer(
            scheduler=server.scheduler_factory(),
            merge=server.merge,
            frame=self.frame_stage.frame,
        )
        # Resilience state: a detached session buffers but does not
        # flush; the plane sets ``journal`` to log sent frames, fills
        # ``_replay`` on resync, and toggles degraded/shed flags.
        self.sequenced = sequenced
        self._writer = _SessionWriter(self, sequenced)
        self.journal: Optional[Callable[[int, bytes], None]] = None
        self.detached = connection is None
        self.degraded = False
        self.shed_display = False
        self.quarantined = False
        # Video degradation ladder rung (repro.core.qos): 0 is the
        # fixed-rate path.  Set only by the QoS plane; migrates so a
        # session does not snap back to full-rate video mid-congestion
        # just because it changed shards.
        self.qos_rung = 0
        # Plane-owned companions, attached by their owners: the
        # resilience plane's guard and the governor's meter live *on*
        # the unit so its whole state surface is reachable from it.
        self.guard = None
        self.meter = None
        # Set by the cluster coordinator after a migration: prepared
        # commands still scheduled against this (frozen) unit are
        # forwarded to the live successor on the target shard.
        self._successor: Optional["SessionUnit"] = None
        self._replay: Deque[bytes] = deque()
        self._control: Deque[bytes] = deque()
        self._audio: Deque[bytes] = deque()
        # Byte gauges over the control/audio queues, maintained at the
        # append/pop sites so the governor's backlog checks stay O(1).
        self._control_bytes = 0
        self._audio_bytes = 0
        self._flush_scheduled = False
        # Monotonic per-session enqueue horizon: a cache hit on the
        # prepare plane can be ready *before* this session's previously
        # submitted work, and the buffer stage must still see commands
        # in submission order (see repro.core.pipeline module docs).
        self._pipe_tail = 0.0
        self.stats = {"messages_sent": 0, "bytes_sent": 0,
                      "flush_periods": 0, "cpu_time": 0.0,
                      "audio_dropped": 0, "display_shed": 0,
                      "uplink_dropped": 0, "wire_errors": 0}
        if connection is not None:
            connection.up.connect(self._on_client_data)
        self.reset_parser()
        if greet:
            self.queue_control(wire.ScreenInitMessage(*self.viewport))

    @property
    def cipher(self):
        return self.frame_stage.cipher

    # -- framing ------------------------------------------------------------

    def _frame(self, msg) -> bytes:
        return self.frame_stage.frame(msg)

    # -- enqueue paths ---------------------------------------------------------

    def submit(self, command: Command) -> None:
        """Route a display command through the shared prepare plane.

        Preparation (scaling + compression) costs real server CPU; a
        command only becomes sendable once prepared.  The plane's cache
        means a command another same-viewport session already paid for
        arrives here for free.
        """
        self.server.plane.submit(command, (self,))

    def submit_batch(self, commands) -> None:
        """Route one drain of commands through the plane's batch path.

        Equivalent to :meth:`submit` per command, but same-shape RAW
        blocks share a fused filter pass (see
        :meth:`repro.core.pipeline.PreparePlane.submit_batch`).
        """
        self.server.plane.submit_batch(commands, (self,))

    def enqueue_prepared(self, command: Command,
                         ready_at: float = 0.0) -> None:
        """Buffer a prepared command once its CPU completion time passes.

        Clamped to the session's pipe tail so adds stay in submission
        order even when a cache hit is ready before earlier work.
        """
        if self._successor is not None:
            self._successor.enqueue_prepared(command, ready_at)
            return
        ready = max(ready_at, self._pipe_tail)
        self._pipe_tail = ready
        _sanitizer.check_pipe_tail(self, ready)
        if ready <= self.loop.now:
            self._add_to_buffer(command)
        else:
            self.loop.schedule(ready - self.loop.now,
                               lambda c=command: self._add_to_buffer(c))

    def _add_to_buffer(self, command: Command) -> None:
        if self._successor is not None:
            # This unit was frozen and migrated while the command's
            # prepare completion was still scheduled; the pixels belong
            # to the live successor on the target shard.
            self._successor._add_to_buffer(command)
            return
        if self.shed_display or self.quarantined:
            # The detach window expired and the queue was dropped (or
            # the governor evicted the session): the reconnect resync
            # will be a snapshot of *current* content, so buffering
            # more display work is pure waste.
            self.stats["display_shed"] += 1
            return
        self.buffer.add(command, now=self.loop.now)
        self.server.governor.after_display_add(self)
        self._kick()

    def queue_control(self, message) -> None:
        if self.quarantined:
            return
        data = self._frame(message)
        self._control.append(data)
        self._control_bytes += len(data)
        self.server.governor.after_control_add(self)
        self._kick()

    def queue_audio(self, timestamp: float, samples: bytes) -> None:
        if self.detached or self.degraded or self.quarantined:
            # Audio is useless late: a detached client cannot hear it
            # and a congested pipe should spend its bytes on display
            # updates (graceful degradation sheds audio first).
            self.stats["audio_dropped"] += 1
            return
        data = self._frame(wire.AudioChunkMessage(timestamp, samples))
        self._audio.append(data)
        self._audio_bytes += len(data)
        self.server.governor.after_audio_add(self)
        self._kick()

    # -- governance gauges and hooks -----------------------------------------

    @property
    def audio_backlog_bytes(self) -> int:
        return self._audio_bytes

    @property
    def control_backlog_bytes(self) -> int:
        return self._control_bytes

    def drop_oldest_audio(self) -> None:
        data = self._audio.popleft()
        self._audio_bytes -= len(data)
        self.stats["audio_dropped"] += 1

    def clear_audio(self) -> None:
        self._audio.clear()
        self._audio_bytes = 0

    def reset_parser(self) -> None:
        """(Re)create the uplink parser with the typed wire limits:
        small frames only, a bounded reassembly buffer, and only
        client-to-server message types accepted."""
        self._parser = wire.StreamParser(
            max_frame=LIMITS.max_uplink_frame_bytes,
            max_pending=LIMITS.max_uplink_pending_bytes,
            allowed=SERVER_ACCEPTS)

    def note_input(self, event: InputEvent) -> None:
        # Input arrives in session coordinates; the real-time region is
        # matched against commands already mapped into this client's
        # (possibly zoomed, scaled) viewport space.
        x, y = self.scaler.map_point(event.x, event.y)
        self.buffer.note_input(x, y, event.time)

    # -- flush machinery ----------------------------------------------------------

    def _kick(self) -> None:
        if self.detached:
            return  # rebind() re-kicks when a connection is back
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.loop.schedule(0.0, self._flush)

    def pending(self) -> bool:
        return bool(self._replay or self._control or self._audio
                    or self.buffer.pending_commands())

    def _flush(self) -> None:
        self._flush_scheduled = False
        if self.detached:
            return  # no socket to write to; rebind() resumes flushing
        self.stats["flush_periods"] += 1
        writer = self._writer
        sent_before = writer.total_bytes
        # Resync replay drains first (the client must catch up to the
        # stream point before new frames make sense), then control
        # messages (tiny, order-sensitive), then audio
        # (latency-sensitive), then display commands in SRSF order.
        while self._replay and \
                len(self._replay[0]) <= writer.prewrapped_writable():
            writer.write_prewrapped(self._replay.popleft())
            self.stats["messages_sent"] += 1
        for fifo in (self._control, self._audio):
            if self._replay:
                break
            while fifo and len(fifo[0]) <= writer.writable_bytes():
                data = fifo.popleft()
                if fifo is self._control:
                    self._control_bytes -= len(data)
                else:
                    self._audio_bytes -= len(data)
                writer.write(data)
                self.stats["messages_sent"] += 1
        if not self._replay and not self._control:
            result = self.buffer.flush(writer)
            self.stats["messages_sent"] += result.commands_sent
        self.stats["bytes_sent"] += writer.total_bytes - sent_before
        if self.pending():
            self._flush_scheduled = True
            self.loop.schedule(FLUSH_INTERVAL, self._flush)

    # -- resilience hooks (driven by repro.core.resilience) -------------------

    def detach(self) -> None:
        """The plane lost the client: stop flushing, keep absorbing.

        The command queue keeps taking display updates (eviction keeps
        it minimal — exactly the Section 4 replay invariant the resync
        relies on); audio is shed; control messages are preserved.
        """
        self.detached = True

    def rebind(self, connection: Connection) -> None:
        """Bind this session to a freshly dialled connection.

        The old endpoint's receiver is neutralised so late in-flight
        segments cannot reach the new parser, the parser restarts
        clean, and both sides restart their RC4 keystreams (the replay
        log holds plaintext frames, re-encrypted on the way out).
        """
        if self.connection is not None:
            self.connection.up.disconnect()
        self.connection = connection
        connection.up.connect(self._on_client_data)
        self.reset_parser()
        if self._encrypt_key is not None:
            self.frame_stage.rekey(RC4(self._encrypt_key))
        self.detached = False
        self._kick()

    # -- the serializable edge (driven by repro.cluster) -----------------------

    def freeze(self) -> FrozenSession:
        """Capture this unit's frozen half and detach it.

        The transport receiver is neutralised first so late in-flight
        client bytes cannot mutate the state mid-capture.  The caller
        (the shard coordinator) then detaches the unit from its server,
        ships the blob, thaws it elsewhere, and points this husk at the
        successor with :meth:`forward_to`.
        """
        if self.connection is not None:
            self.connection.up.disconnect()
        self.detached = True
        subscribed, tile_mode = _fanout_membership(self)
        guard = self.guard
        return FrozenSession(
            token=guard.token if guard is not None else 0,
            viewport=(int(self.viewport[0]), int(self.viewport[1])),
            view_rect=self.scaler.view,
            sequenced=self.sequenced,
            degraded=self.degraded,
            shed_display=self.shed_display,
            log_dropped=bool(guard.log_dropped) if guard is not None
            else False,
            queue_dropped=bool(guard.queue_dropped) if guard is not None
            else False,
            last_seq=self._writer.last_seq,
            acked_seq=guard.acked_seq if guard is not None else 0,
            pipe_tail=self._pipe_tail,
            journal=tuple(guard.log) if guard is not None else (),
            commands=tuple(cmd.encode() for cmd in self.buffer.queue),
            replay=tuple(self._replay),
            control=tuple(self._control),
            stats=dict(self.stats),
            subscribed=subscribed,
            tile_mode=tile_mode,
            qos_rung=self.qos_rung,
        )

    def forward_to(self, successor: "SessionUnit") -> None:
        """Route work still scheduled against this frozen unit (prepare
        completions in flight at freeze time) to its live successor."""
        self._successor = successor

    # -- instrumentation -----------------------------------------------------

    def pipeline_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-stage counters for this session's half of the pipeline."""
        bstats = self.buffer.stats
        return {
            "buffer": {
                "commands_in": bstats["commands_in"],
                "commands_out": bstats["commands_out"],
                "bytes_out": bstats["bytes_out"],
                "commands_split": bstats["commands_split"],
                "queue_depth": self.buffer.pending_commands(),
            },
            "frame": self.frame_stage.stats.as_dict(),
            "flush": {
                "flush_periods": self.stats["flush_periods"],
                "commands_out": self.stats["messages_sent"],
                "bytes_out": self.stats["bytes_sent"],
                "queue_depth": len(self._control) + len(self._audio),
            },
        }

    # -- client-to-server traffic ---------------------------------------------

    def _on_client_data(self, chunk: bytes) -> None:
        # Client->server traffic is not encrypted in this model (input
        # events only; the paper encrypts both ways but RC4 is
        # size-preserving so accounting is identical).
        if self.quarantined:
            return
        governor = self.server.governor
        try:
            for msg in self._parser.feed(chunk):
                if not governor.allow_uplink(self):
                    self.stats["uplink_dropped"] += 1
                    continue
                self.server.handle_client_message(self, msg)
        except (ValueError, KeyError, struct.error, zlib.error) as exc:
            # Any decode failure is a session-scoped event, never a
            # server crash: the governor either resets the parser (a
            # resilient session on a lossy link — heartbeats repeat and
            # the liveness clock already advanced when the bytes
            # arrived) or quarantines and detaches the session.
            self.stats["wire_errors"] += 1
            governor.on_wire_error(self, exc)
