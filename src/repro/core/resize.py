"""Server-side screen scaling (paper Section 6).

THINC decouples the session's framebuffer size from the size at which a
client views it: after a client reports a smaller viewport, the server
resizes every update before transmission.  Resizing is implemented with
a simplified Fant resampler — separable, area-weighted pixel mixing —
which anti-aliases downscales at very low cost (Section 7 cites Fant's
non-aliasing spatial transform).

The per-command policy follows the paper exactly:

=========  =============================================================
command    policy
=========  =============================================================
RAW        resampled — pure pixel data, large bandwidth win
PFILL      the tile image is resized
BITMAP     converted to RAW and resampled (1-bit data cannot carry the
           intermediate values anti-aliasing needs)
SFILL      sent unmodified apart from coordinates — no savings possible
COPY       coordinates scaled
video      frames resampled to the scaled destination and re-encoded
=========  =============================================================
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..protocol.commands import (BitmapCommand, Command, CompositeCommand,
                                 CopyCommand, PFillCommand, RawCommand,
                                 SFillCommand, VideoFrameCommand)
from ..region import Rect
from ..video import yuv

__all__ = ["resample", "scale_rect", "scale_command", "DisplayScaler"]


def _resample_axis(arr: np.ndarray, dst_len: int, axis: int) -> np.ndarray:
    """Area-weighted 1-D resample along *axis* (Fant-style pixel mixing).

    Each destination pixel is the exact average of the source interval
    it covers, computed via linear interpolation of the cumulative sum —
    correct for both magnification and minification.
    """
    src_len = arr.shape[axis]
    if src_len == dst_len:
        return arr
    moved = np.moveaxis(arr, axis, 0).astype(np.float64)
    # Prefix integral of the source signal: cs[i] = sum of first i pixels.
    cs = np.concatenate(
        [np.zeros((1,) + moved.shape[1:]), np.cumsum(moved, axis=0)], axis=0)
    scale = src_len / dst_len
    edges = np.arange(dst_len + 1) * scale
    idx = np.clip(edges.astype(int), 0, src_len)
    frac = np.clip(edges - idx, 0.0, 1.0)
    # Integral up to a fractional position, by linear interpolation.
    upper = np.clip(idx + 1, 0, src_len)
    vals = cs[idx] + (cs[upper] - cs[idx]) * frac.reshape(
        (-1,) + (1,) * (moved.ndim - 1))
    sums = vals[1:] - vals[:-1]
    out = sums / scale
    return np.moveaxis(out, 0, axis)


def resample(pixels: np.ndarray, dst_w: int, dst_h: int) -> np.ndarray:
    """Resample an HxWxC uint8 image to dst_w x dst_h, anti-aliased."""
    if dst_w <= 0 or dst_h <= 0:
        raise ValueError("target dimensions must be positive")
    out = _resample_axis(np.asarray(pixels), dst_h, 0)
    out = _resample_axis(out, dst_w, 1)
    return np.clip(np.rint(out), 0, 255).astype(np.uint8)


def scale_rect(rect: Rect, sx: float, sy: float) -> Rect:
    """Map a rect into client space, covering at least one pixel."""
    x1 = math.floor(rect.x * sx)
    y1 = math.floor(rect.y * sy)
    x2 = max(x1 + 1, math.ceil(rect.x2 * sx))
    y2 = max(y1 + 1, math.ceil(rect.y2 * sy))
    return Rect.from_corners(x1, y1, x2, y2)


def _bitmap_to_rgba(cmd: BitmapCommand) -> np.ndarray:
    """Expand a stipple into RGBA pixels for RAW conversion."""
    h, w = cmd.mask.shape
    out = np.zeros((h, w, 4), dtype=np.uint8)
    out[cmd.mask] = np.asarray(cmd.fg, dtype=np.uint8)
    if cmd.bg is not None:
        out[~cmd.mask] = np.asarray(cmd.bg, dtype=np.uint8)
    # Transparent stipple: zero bits keep alpha 0 so the client blends.
    return out


class DisplayScaler:
    """Maps protocol commands from server to client coordinates.

    The general form of Section 6's server-side resizing: the client
    views ``view_rect`` (a sub-region of the server framebuffer; the
    whole screen by default) scaled into its viewport.  A full-screen
    view with a small viewport is the zoomed-out PDA case; a small view
    rect is the user having zoomed in on part of the desktop.
    """

    def __init__(self, server_size, client_size, view_rect: Rect = None):
        sw, sh = server_size
        cw, ch = client_size
        if min(sw, sh, cw, ch) <= 0:
            raise ValueError("sizes must be positive")
        self.server_w = sw
        self.server_h = sh
        self.view = view_rect if view_rect is not None else Rect(
            0, 0, sw, sh)
        if self.view.empty:
            raise ValueError("view rect must be non-empty")
        self.sx = cw / self.view.width
        self.sy = ch / self.view.height
        self.client_w = cw
        self.client_h = ch

    @property
    def identity(self) -> bool:
        # A 1:1 view is only a passthrough when it covers the *whole*
        # server framebuffer: an origin-anchored sub-view (e.g. a tile
        # wall's top-left tile) still needs clipping, and COPY sources
        # outside it still need materialising.
        return (self.sx == 1.0 and self.sy == 1.0
                and self.view.x == 0 and self.view.y == 0
                and self.view.width == self.server_w
                and self.view.height == self.server_h)

    @property
    def key(self):
        """Hashable identity of this scaling transform.

        Two scalers with equal keys produce identical output for any
        command — the view rect and the client size fully determine
        ``sx``/``sy`` — so the prepare plane uses this as the viewport
        half of its prepared-command cache key.
        """
        return (self.view.x, self.view.y, self.view.width,
                self.view.height, self.client_w, self.client_h)

    def scale_command(self, cmd: Command,
                      read_back=None) -> List[Command]:
        """Apply the Section 6 per-command policy; may return [].

        *read_back*, when given, is ``rect -> pixels`` over the live
        server framebuffer.  A COPY whose source lies outside the view
        cannot be replayed client-side — the client never received
        those pixels — so it is materialised as RAW from the
        framebuffer (which already holds the post-copy content at
        submit time).  Without *read_back* such a copy would fault in
        ``translated``; every server-driven path supplies it.
        """
        if self.identity:
            return [cmd]
        if (isinstance(cmd, CopyCommand) and read_back is not None
                and not self.view.contains(cmd.src_rect)):
            cmd = RawCommand(cmd.dest, read_back(cmd.dest), compress=True)
        visible = cmd.dest.intersect(self.view)
        if visible.empty:
            return []
        if isinstance(cmd, VideoFrameCommand):
            # Video frames cannot be rect-clipped (all-or-nothing); the
            # visible portion is cropped out of the decoded frame.
            return [self._map_video(cmd, visible)]
        if visible != cmd.dest:
            # Zoomed view: only the part inside the view travels.
            out: List[Command] = []
            for part in cmd.clipped([visible]):
                out.extend(self._map_command(part))
            return out
        return self._map_command(cmd)

    def _map_command(self, cmd: Command) -> List[Command]:
        cmd = cmd.translated(-self.view.x, -self.view.y) \
            if (self.view.x or self.view.y) else cmd
        dest = scale_rect(cmd.dest, self.sx, self.sy).intersect(
            Rect(0, 0, self.client_w, self.client_h))
        if dest.empty:
            return []
        if isinstance(cmd, SFillCommand):
            return [SFillCommand(dest, cmd.color)]
        if isinstance(cmd, RawCommand):
            pixels = resample(cmd.pixels, dest.width, dest.height)
            return [RawCommand(dest, pixels, cmd.encoding)]
        if isinstance(cmd, PFillCommand):
            tw = max(1, round(cmd.tile.shape[1] * self.sx))
            th = max(1, round(cmd.tile.shape[0] * self.sy))
            tile = resample(cmd.tile, tw, th)
            origin = (math.floor(cmd.origin[0] * self.sx),
                      math.floor(cmd.origin[1] * self.sy))
            return [PFillCommand(dest, tile, origin)]
        if isinstance(cmd, BitmapCommand):
            rgba = resample(_bitmap_to_rgba(cmd), dest.width, dest.height)
            if cmd.bg is None:
                return [CompositeCommand(dest, rgba)]
            return [RawCommand(dest, rgba, compress=True)]
        if isinstance(cmd, CompositeCommand):
            pixels = resample(cmd.pixels, dest.width, dest.height)
            return [CompositeCommand(dest, pixels)]
        if isinstance(cmd, CopyCommand):
            sx = math.floor(cmd.src_x * self.sx)
            sy = math.floor(cmd.src_y * self.sy)
            return [CopyCommand(sx, sy, dest)]
        if isinstance(cmd, VideoFrameCommand):
            return [self._scale_video(cmd, dest)]
        return [cmd]

    def map_point(self, x: int, y: int):
        """Server point -> client point (for cursor/input geometry)."""
        return (int((x - self.view.x) * self.sx),
                int((y - self.view.y) * self.sy))

    def _map_video(self, cmd: VideoFrameCommand,
                   visible: Rect) -> VideoFrameCommand:
        """Crop (for zoomed views) and resample one video frame."""
        dest = scale_rect(visible.translate(-self.view.x, -self.view.y),
                          self.sx, self.sy).intersect(
            Rect(0, 0, self.client_w, self.client_h))
        rgb = yuv.decode_frame(cmd.pixel_format, cmd.yuv_bytes,
                               cmd.src_width, cmd.src_height)
        if visible != cmd.dest:
            # Map the visible screen area back into source pixels.
            fx = cmd.src_width / cmd.dest.width
            fy = cmd.src_height / cmd.dest.height
            x0 = int((visible.x - cmd.dest.x) * fx)
            y0 = int((visible.y - cmd.dest.y) * fy)
            x1 = max(x0 + 2, int(math.ceil(visible.x2 - cmd.dest.x) * fx))
            y1 = max(y0 + 2, int(math.ceil(visible.y2 - cmd.dest.y) * fy))
            rgb = rgb[y0 : min(y1, cmd.src_height),
                      x0 : min(x1, cmd.src_width)]
        new_w = max(2, min(rgb.shape[1],
                           int(round(rgb.shape[1] * self.sx))) // 2 * 2)
        new_h = max(2, min(rgb.shape[0],
                           int(round(rgb.shape[0] * self.sy))) // 2 * 2)
        # Zooming in enlarges: allow upscaling up to the visible size.
        if self.sx > 1.0 or self.sy > 1.0:
            new_w = max(2, min(dest.width, int(
                round(rgb.shape[1] * self.sx))) // 2 * 2)
            new_h = max(2, min(dest.height, int(
                round(rgb.shape[0] * self.sy))) // 2 * 2)
        scaled = resample(rgb, new_w, new_h)
        data = yuv.encode_frame(cmd.pixel_format, scaled)
        return VideoFrameCommand(cmd.stream_id, dest, new_w, new_h, data,
                                 frame_no=cmd.frame_no,
                                 pixel_format=cmd.pixel_format)

    def _scale_video(self, cmd: VideoFrameCommand,
                     dest: Rect) -> VideoFrameCommand:
        """Resample video server-side and re-encode as YV12.

        The scaled frame keeps YV12's 12 bpp, so PDA-sized video costs
        roughly (client area / server area) of the original bandwidth —
        the Figure 6 effect.
        """
        rgb = yuv.decode_frame(cmd.pixel_format, cmd.yuv_bytes,
                               cmd.src_width, cmd.src_height)
        # The source data scales with the viewport ratio like every other
        # update; the client's hardware scaler stretches it back to the
        # (scaled) destination window.
        new_w = max(2, int(round(cmd.src_width * self.sx)) // 2 * 2)
        new_h = max(2, int(round(cmd.src_height * self.sy)) // 2 * 2)
        scaled = resample(rgb, new_w, new_h)
        data = yuv.encode_frame(cmd.pixel_format, scaled)
        return VideoFrameCommand(cmd.stream_id, dest, new_w, new_h, data,
                                 frame_no=cmd.frame_no,
                                 pixel_format=cmd.pixel_format)
