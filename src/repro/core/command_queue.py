"""The command queue object (paper Section 4).

A command queue holds the protocol commands that describe the *current*
contents of a draw region, ordered by arrival time.  As new drawing
overwrites the region, commands that became irrelevant are evicted —
wholly or, for partial-class commands, clipped down to their
still-visible remainder — so the queue never accumulates stale work.

The same structure backs both THINC mechanisms built on it:

* one queue per offscreen region (Section 4.1), where it preserves
  drawing semantics until the region is copied onscreen, and
* the per-client command buffer (Section 5), where eviction is what
  keeps a congested connection from wasting bandwidth on outdated
  content (and is what drops video frames under backlog).

Invariant maintained at all times: replaying the queued commands in
arrival order onto the region's previous base content reproduces the
region's current contents.

Spatial index: every queued command is registered in a uniform tile
grid under the tiles its ``dest`` touches, so add-time eviction and the
offscreen copy path consult only the commands whose tiles intersect the
area of interest instead of sweeping the whole queue.  Arrival order is
carried by a per-command position key (``_qorder``), which clip
fragments extend (so they sort exactly where the clipped original
stood) and which makes positional lookups a binary search.  The
``THINC_SANITIZE=1`` pass re-audits index/queue coherence after every
mutation (see :meth:`CommandQueue.audit_structures`).
"""

from __future__ import annotations

import itertools
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..protocol.commands import Command, OverwriteClass
from ..region import Rect, Region
from . import sanitizer as _sanitizer

__all__ = ["CommandQueue", "TILE_SHIFT"]

#: log2 of the tile edge in pixels.  64-pixel tiles keep the grid small
#: (a 1024x768 screen is 16x12 tiles) while still splitting a busy
#: queue into localized buckets.
TILE_SHIFT = 6


def _qorder_of(command: Command) -> Tuple[int, ...]:
    return command._qorder  # type: ignore[attr-defined]


class _TileIndex:
    """Uniform tile grid mapping screen tiles to the commands on them.

    A command whose ``dest`` touches a tile is registered in that
    tile's bucket; the set of commands whose tiles intersect a rect is
    a superset of the commands whose pixels do (two rects sharing a
    pixel necessarily share the tile that pixel lies in), so the index
    can never cause a missed eviction — only skip guaranteed misses.
    """

    __slots__ = ("shift", "_tiles", "_keys_of")

    def __init__(self, shift: int = TILE_SHIFT):
        self.shift = shift
        self._tiles: Dict[Tuple[int, int], Set[Command]] = {}
        # id(command) -> (command, tile keys); the command reference
        # keeps ids stable while registered.
        self._keys_of: Dict[int, Tuple[Command, List[Tuple[int, int]]]] = {}

    def _keys(self, rect: Rect) -> List[Tuple[int, int]]:
        s = self.shift
        tx1 = rect.x >> s
        tx2 = (rect.x + rect.width - 1) >> s
        ty1 = rect.y >> s
        ty2 = (rect.y + rect.height - 1) >> s
        return [(tx, ty)
                for ty in range(ty1, ty2 + 1)
                for tx in range(tx1, tx2 + 1)]

    def register(self, command: Command) -> None:
        keys = self._keys(command.dest)
        tiles = self._tiles
        for key in keys:
            bucket = tiles.get(key)
            if bucket is None:
                bucket = tiles[key] = set()
            bucket.add(command)
        self._keys_of[id(command)] = (command, keys)

    def unregister(self, command: Command) -> None:
        entry = self._keys_of.pop(id(command), None)
        if entry is None:
            return
        tiles = self._tiles
        for key in entry[1]:
            bucket = tiles.get(key)
            if bucket is not None:
                bucket.discard(command)
                if not bucket:
                    del tiles[key]

    def candidates_rect(self, rect: Rect) -> Set[Command]:
        out: Set[Command] = set()
        tiles = self._tiles
        for key in self._keys(rect):
            bucket = tiles.get(key)
            if bucket:
                out.update(bucket)
        return out

    def candidates(self, region: Region) -> Set[Command]:
        out: Set[Command] = set()
        tiles = self._tiles
        seen: Set[Tuple[int, int]] = set()
        for rect in region:
            for key in self._keys(rect):
                if key in seen:
                    continue
                seen.add(key)
                bucket = tiles.get(key)
                if bucket:
                    out.update(bucket)
        return out

    def clear(self) -> None:
        self._tiles.clear()
        self._keys_of.clear()

    def audit(self, commands: Sequence[Command]) -> Optional[str]:
        """Structural coherence check; returns a problem or None.

        Every queued command must be registered under exactly the tiles
        its dest touches, and the grid must hold nothing else.
        """
        listed = {id(c): c for c in commands}
        if set(self._keys_of) != set(listed):
            missing = [repr(c) for i, c in listed.items()
                       if i not in self._keys_of]
            stray = [repr(c) for i, (c, _k) in self._keys_of.items()
                     if i not in listed]
            return (f"tile index out of sync with the queue "
                    f"(unindexed: {missing}, stale: {stray})")
        for cid, (command, keys) in self._keys_of.items():
            expected = self._keys(command.dest)
            if sorted(keys) != sorted(expected):
                return (f"{command!r} registered under tiles {sorted(keys)} "
                        f"but its dest touches {sorted(expected)}")
            for key in keys:
                if command not in self._tiles.get(key, ()):
                    return f"{command!r} missing from tile bucket {key}"
        for key, bucket in self._tiles.items():
            if not bucket:
                return f"empty tile bucket {key} was not pruned"
            for command in bucket:
                entry = self._keys_of.get(id(command))
                if entry is None or key not in entry[1]:
                    return (f"tile bucket {key} holds unregistered "
                            f"{command!r}")
        return None


class CommandQueue:
    """An eviction-maintaining, arrival-ordered queue of commands."""

    def __init__(self, merge: bool = True):
        self.merge_enabled = merge
        # Opt-in invariant checking (THINC_SANITIZE=1); None when off.
        self._sanitizer = _sanitizer.for_queue(self)
        self._commands: List[Command] = []
        self._seq = itertools.count()
        self._index = _TileIndex()
        # Buffered commands that read pixels (COPYs): their sources pin
        # content during eviction; kept as an identity map so the pin
        # region never needs a whole-queue sweep.
        self._copy_srcs: Dict[int, Command] = {}
        # Union of all opaque destinations ever added: the part of the
        # region whose contents the queue fully describes.
        self._opaque_cover = Region()
        # Areas where a transparent command blended over content the
        # queue does not describe; replay there is not faithful.
        self._tainted = Region()
        # Statistics for the ablation benches.
        self.stats = {"added": 0, "evicted": 0, "clipped": 0, "merged": 0}

    # -- inspection -------------------------------------------------------

    @property
    def commands(self) -> Sequence[Command]:
        return tuple(self._commands)

    def __len__(self) -> int:
        return len(self._commands)

    def __iter__(self) -> Iterator[Command]:
        return iter(self._commands)

    def __bool__(self) -> bool:
        return bool(self._commands)

    @property
    def opaque_cover(self) -> Region:
        """Region whose contents the queued commands fully describe."""
        return self._opaque_cover.copy()

    @property
    def tainted(self) -> Region:
        """Region where replay would not be faithful (see module doc)."""
        return self._tainted.copy()

    def total_wire_size(self) -> int:
        return sum(c.wire_size() for c in self._commands)

    # -- bookkeeping -------------------------------------------------------

    def _register(self, command: Command) -> None:
        self._index.register(command)
        if getattr(command, "src_rect", None) is not None:
            self._copy_srcs[id(command)] = command

    def _unregister(self, command: Command) -> None:
        self._index.unregister(command)
        self._copy_srcs.pop(id(command), None)

    def _position_of(self, command: Command) -> int:
        """Index of *command* in the queue; raises ValueError if absent.

        Queued commands carry a strictly increasing ``_qorder`` key, so
        the position is a binary search; foreign instances fall back to
        an identity scan (to preserve list.remove's error contract).
        """
        key = getattr(command, "_qorder", None)
        commands = self._commands
        if key is not None:
            idx = bisect_left(commands, key, key=_qorder_of)
            if idx < len(commands) and commands[idx] is command:
                return idx
        for idx, queued in enumerate(commands):
            if queued is command:
                return idx
        raise ValueError("command is not queued")

    # -- core operations ----------------------------------------------------

    def add(self, command: Command) -> Command:
        """Append a command, evicting or clipping what it overwrites.

        Returns the command instance actually stored, which differs from
        the argument when the command merged into its predecessor.
        """
        command.seq = next(self._seq)
        self.stats["added"] += 1
        san = self._sanitizer
        if san is not None:
            san.before_mutation(self, command)
        opaque = command.opaque_region
        if not opaque.is_empty:
            self._evict_under(opaque, command)
            self._opaque_cover = self._opaque_cover.union(opaque)
        elif not self._opaque_cover.contains_rect(command.dest):
            # A transparent command blending over content this queue does
            # not describe: mark the area as non-replayable.
            self._tainted.add(command.dest)
        stored = self._try_merge_tail(command) if self.merge_enabled else None
        if stored is None:
            command._qorder = (command.seq,)  # type: ignore[attr-defined]
            self._commands.append(command)
            self._register(command)
            stored = command
        if san is not None:
            san.after_add(self, command, opaque)
        return stored

    def _evict_under(self, opaque: Region, newcomer: Command) -> None:
        """Drop or clip queued commands the new opaque region overwrites.

        Regions that a still-buffered COPY command reads from are
        *pinned*: the commands producing those pixels must survive (and
        be replayed) even though newer content covers them, because the
        COPY executes first and needs them on the client framebuffer.
        The newcomer's own source counts too — an overlapping scroll
        must not evict the producers of the pixels it is about to read.
        """
        pinned = Region()
        own_src = getattr(newcomer, "src_rect", None)
        if own_src is not None:
            pinned.add(own_src)
        for copy_cmd in self._copy_srcs.values():
            pinned.add(copy_cmd.src_rect)
        if pinned:
            opaque = opaque.subtract(pinned)
            if opaque.is_empty:
                return
        candidates = self._index.candidates(opaque)
        if not candidates:
            return
        # None never appears as a value: () means evict, a non-empty
        # tuple means replace with clip fragments; untouched candidates
        # are simply absent.
        decisions: Dict[int, Tuple[Command, ...]] = {}
        for cmd in candidates:
            if not opaque.overlaps_rect(cmd.dest):
                continue
            if cmd.overwrite_class is OverwriteClass.PARTIAL:
                visible = Region.from_rect(cmd.dest).subtract(opaque)
                if visible.is_empty:
                    self.stats["evicted"] += 1
                    decisions[id(cmd)] = ()
                    continue
                if visible.area == cmd.dest.area:
                    continue
                fragments = cmd.clipped(list(visible))
                order = cmd._qorder  # type: ignore[attr-defined]
                for pos, frag in enumerate(fragments):
                    frag.seq = cmd.seq
                    frag.realtime = cmd.realtime
                    frag.sched_floor = cmd.sched_floor
                    frag._qorder = order + (pos,)  # type: ignore[attr-defined]
                decisions[id(cmd)] = tuple(fragments)
                self.stats["clipped"] += 1
            else:
                # COMPLETE and TRANSPARENT commands are evicted only when
                # fully covered by the new opaque content.
                if opaque.contains_rect(cmd.dest):
                    self.stats["evicted"] += 1
                    decisions[id(cmd)] = ()
        if not decisions:
            return
        touched = sorted(
            (cmd for cmd in candidates if id(cmd) in decisions),
            key=_qorder_of, reverse=True)
        commands = self._commands
        for cmd in touched:
            idx = self._position_of(cmd)
            replacement = decisions[id(cmd)]
            self._unregister(cmd)
            for frag in replacement:
                self._register(frag)
            commands[idx:idx + 1] = replacement

    def _try_merge_tail(self, command: Command) -> Optional[Command]:
        """Merge *command* into the queue's last command when adjacent."""
        if not self._commands:
            return None
        tail = self._commands[-1]
        merged = tail.try_merge(command)
        if merged is None:
            return None
        merged.seq = tail.seq
        merged.realtime = tail.realtime or command.realtime
        merged.sched_floor = max(tail.sched_floor, command.sched_floor)
        merged._qorder = tail._qorder  # type: ignore[attr-defined]
        self._unregister(tail)
        self._commands[-1] = merged
        self._register(merged)
        self.stats["merged"] += 1
        return merged

    def drain(self) -> List[Command]:
        """Remove and return all commands in arrival order."""
        san = self._sanitizer
        if san is not None:
            san.before_mutation(self)
        out = self._commands
        self._commands = []
        self._index.clear()
        self._copy_srcs.clear()
        if san is not None:
            san.after_mutation(self, "drain")
        return out

    def remove(self, command: Command) -> None:
        """Remove a specific command instance (used after delivery)."""
        san = self._sanitizer
        if san is not None:
            san.before_mutation(self)
        del self._commands[self._position_of(command)]
        self._unregister(command)
        if san is not None:
            san.after_mutation(self, "remove")

    def replace(self, command: Command, replacement: Command) -> None:
        """Swap a command for its unsent remainder in place.

        The remainder keeps the original's place in arrival order, so a
        replacement that was not produced by ``Command.split`` (which
        copies the metadata itself) inherits seq/realtime/floor here.
        """
        if replacement.seq == -1:
            replacement.seq = command.seq
            replacement.realtime = command.realtime
            replacement.sched_floor = command.sched_floor
        san = self._sanitizer
        if san is not None:
            san.before_mutation(self)
            san.check_replace(self, command, replacement, "replace")
        idx = self._position_of(command)
        replacement._qorder = command._qorder  # type: ignore[attr-defined]
        self._unregister(command)
        self._commands[idx] = replacement
        self._register(replacement)
        if san is not None:
            san.after_mutation(self, "replace")

    def clear(self) -> None:
        self._commands = []
        self._index.clear()
        self._copy_srcs.clear()
        self._opaque_cover = Region()
        self._tainted = Region()
        if self._sanitizer is not None:
            self._sanitizer.reset()

    # -- offscreen support (Section 4.1) -----------------------------------

    def commands_for_copy(self, src_rect: Rect, dx: int, dy: int
                          ) -> List[Command]:
        """Commands reproducing *src_rect*'s content at a new location.

        Implements the paper's queue-to-queue copy: the commands that
        draw on the source region are *copied* (the source queue is left
        intact, since a region can source many copies), clipped to the
        copied rectangle, and translated to their new location.

        Only the replayable part of the source is returned — commands
        are clipped to ``src_rect`` minus :meth:`uncovered_region`, so
        callers cover the remainder with RAW pixel data read from the
        source drawable and the two never overlap.
        """
        replay = Region.from_rect(src_rect).subtract(
            self.uncovered_region(src_rect))
        if replay.is_empty:
            return []
        candidates = self._index.candidates_rect(src_rect)
        if not candidates:
            return []
        replay_rects = list(replay)
        out: List[Command] = []
        for cmd in sorted(candidates, key=_qorder_of):
            if not cmd.dest.overlaps(src_rect):
                continue
            for part in cmd.clipped(replay_rects):
                out.append(part.translated(dx, dy))
        return out

    def uncovered_region(self, src_rect: Rect) -> Region:
        """The part of *src_rect* that replay cannot faithfully rebuild.

        This is where the translation layer falls back to RAW: pixels
        never described by queued opaque commands, plus areas tainted by
        transparent commands blending over undescribed content.
        """
        missing = Region.from_rect(src_rect).subtract(self._opaque_cover)
        return missing.union(self._tainted.intersect_rect(src_rect))

    # -- diagnostics --------------------------------------------------------

    def audit_structures(self) -> Optional[str]:
        """Coherence check of the spatial index and auxiliary maps.

        Used by the THINC_SANITIZE pass after every mutation; returns a
        human-readable problem description, or None when coherent.
        """
        problem = self._index.audit(self._commands)
        if problem is not None:
            return problem
        expected_srcs = {id(c) for c in self._commands
                         if getattr(c, "src_rect", None) is not None}
        if set(self._copy_srcs) != expected_srcs:
            return "pinned-source map out of sync with the queue"
        last: Optional[Tuple[int, ...]] = None
        for cmd in self._commands:
            key = getattr(cmd, "_qorder", None)
            if key is None:
                return f"queued {cmd!r} has no position key"
            if last is not None and key <= last:
                return (f"position keys are not strictly increasing "
                        f"({last} then {key})")
            last = key
        return None

    def __repr__(self) -> str:
        return f"CommandQueue({len(self._commands)} commands)"
