"""The command queue object (paper Section 4).

A command queue holds the protocol commands that describe the *current*
contents of a draw region, ordered by arrival time.  As new drawing
overwrites the region, commands that became irrelevant are evicted —
wholly or, for partial-class commands, clipped down to their
still-visible remainder — so the queue never accumulates stale work.

The same structure backs both THINC mechanisms built on it:

* one queue per offscreen region (Section 4.1), where it preserves
  drawing semantics until the region is copied onscreen, and
* the per-client command buffer (Section 5), where eviction is what
  keeps a congested connection from wasting bandwidth on outdated
  content (and is what drops video frames under backlog).

Invariant maintained at all times: replaying the queued commands in
arrival order onto the region's previous base content reproduces the
region's current contents.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Sequence

from ..protocol.commands import Command, OverwriteClass
from ..region import Rect, Region
from . import sanitizer as _sanitizer

__all__ = ["CommandQueue"]


class CommandQueue:
    """An eviction-maintaining, arrival-ordered queue of commands."""

    def __init__(self, merge: bool = True):
        self.merge_enabled = merge
        # Opt-in invariant checking (THINC_SANITIZE=1); None when off.
        self._sanitizer = _sanitizer.for_queue(self)
        self._commands: List[Command] = []
        self._seq = itertools.count()
        # Union of all opaque destinations ever added: the part of the
        # region whose contents the queue fully describes.
        self._opaque_cover = Region()
        # Areas where a transparent command blended over content the
        # queue does not describe; replay there is not faithful.
        self._tainted = Region()
        # Statistics for the ablation benches.
        self.stats = {"added": 0, "evicted": 0, "clipped": 0, "merged": 0}

    # -- inspection -------------------------------------------------------

    @property
    def commands(self) -> Sequence[Command]:
        return tuple(self._commands)

    def __len__(self) -> int:
        return len(self._commands)

    def __iter__(self) -> Iterator[Command]:
        return iter(self._commands)

    def __bool__(self) -> bool:
        return bool(self._commands)

    @property
    def opaque_cover(self) -> Region:
        """Region whose contents the queued commands fully describe."""
        return self._opaque_cover.copy()

    @property
    def tainted(self) -> Region:
        """Region where replay would not be faithful (see module doc)."""
        return self._tainted.copy()

    def total_wire_size(self) -> int:
        return sum(c.wire_size() for c in self._commands)

    # -- core operations ----------------------------------------------------

    def add(self, command: Command) -> Command:
        """Append a command, evicting or clipping what it overwrites.

        Returns the command instance actually stored, which differs from
        the argument when the command merged into its predecessor.
        """
        command.seq = next(self._seq)
        self.stats["added"] += 1
        san = self._sanitizer
        if san is not None:
            san.before_mutation(self, command)
        opaque = command.opaque_region
        if not opaque.is_empty:
            self._evict_under(opaque, command)
            self._opaque_cover = self._opaque_cover.union(opaque)
        elif not self._opaque_cover.contains_rect(command.dest):
            # A transparent command blending over content this queue does
            # not describe: mark the area as non-replayable.
            self._tainted.add(command.dest)
        stored = self._try_merge_tail(command) if self.merge_enabled else None
        if stored is None:
            self._commands.append(command)
            stored = command
        if san is not None:
            san.after_add(self, command, opaque)
        return stored

    def _evict_under(self, opaque: Region, newcomer: Command) -> None:
        """Drop or clip queued commands the new opaque region overwrites.

        Regions that a still-buffered COPY command reads from are
        *pinned*: the commands producing those pixels must survive (and
        be replayed) even though newer content covers them, because the
        COPY executes first and needs them on the client framebuffer.
        The newcomer's own source counts too — an overlapping scroll
        must not evict the producers of the pixels it is about to read.
        """
        pinned = Region()
        own_src = getattr(newcomer, "src_rect", None)
        if own_src is not None:
            pinned.add(own_src)
        for cmd in self._commands:
            src = getattr(cmd, "src_rect", None)
            if src is not None:
                pinned.add(src)
        if pinned:
            opaque = opaque.subtract(pinned)
            if opaque.is_empty:
                return
        kept: List[Command] = []
        for cmd in self._commands:
            if not opaque.overlaps_rect(cmd.dest):
                kept.append(cmd)
                continue
            if cmd.overwrite_class is OverwriteClass.PARTIAL:
                visible = Region.from_rect(cmd.dest).subtract(opaque)
                if visible.is_empty:
                    self.stats["evicted"] += 1
                    continue
                if visible.area == cmd.dest.area:
                    kept.append(cmd)
                    continue
                fragments = cmd.clipped(list(visible))
                for frag in fragments:
                    frag.seq = cmd.seq
                    frag.realtime = cmd.realtime
                    frag.sched_floor = cmd.sched_floor
                kept.extend(fragments)
                self.stats["clipped"] += 1
            else:
                # COMPLETE and TRANSPARENT commands are evicted only when
                # fully covered by the new opaque content.
                if opaque.contains_rect(cmd.dest):
                    self.stats["evicted"] += 1
                else:
                    kept.append(cmd)
        self._commands = kept

    def _try_merge_tail(self, command: Command) -> Optional[Command]:
        """Merge *command* into the queue's last command when adjacent."""
        if not self._commands:
            return None
        tail = self._commands[-1]
        merged = tail.try_merge(command)
        if merged is None:
            return None
        merged.seq = tail.seq
        merged.realtime = tail.realtime or command.realtime
        merged.sched_floor = max(tail.sched_floor, command.sched_floor)
        self._commands[-1] = merged
        self.stats["merged"] += 1
        return merged

    def drain(self) -> List[Command]:
        """Remove and return all commands in arrival order."""
        san = self._sanitizer
        if san is not None:
            san.before_mutation(self)
        out = self._commands
        self._commands = []
        if san is not None:
            san.after_mutation(self, "drain")
        return out

    def remove(self, command: Command) -> None:
        """Remove a specific command instance (used after delivery)."""
        san = self._sanitizer
        if san is not None:
            san.before_mutation(self)
        self._commands.remove(command)
        if san is not None:
            san.after_mutation(self, "remove")

    def replace(self, command: Command, replacement: Command) -> None:
        """Swap a command for its unsent remainder in place.

        The remainder keeps the original's place in arrival order, so a
        replacement that was not produced by ``Command.split`` (which
        copies the metadata itself) inherits seq/realtime/floor here.
        """
        if replacement.seq == -1:
            replacement.seq = command.seq
            replacement.realtime = command.realtime
            replacement.sched_floor = command.sched_floor
        san = self._sanitizer
        if san is not None:
            san.before_mutation(self)
            san.check_replace(self, command, replacement, "replace")
        idx = self._commands.index(command)
        self._commands[idx] = replacement
        if san is not None:
            san.after_mutation(self, "replace")

    def clear(self) -> None:
        self._commands = []
        self._opaque_cover = Region()
        self._tainted = Region()
        if self._sanitizer is not None:
            self._sanitizer.reset()

    # -- offscreen support (Section 4.1) -----------------------------------

    def commands_for_copy(self, src_rect: Rect, dx: int, dy: int
                          ) -> List[Command]:
        """Commands reproducing *src_rect*'s content at a new location.

        Implements the paper's queue-to-queue copy: the commands that
        draw on the source region are *copied* (the source queue is left
        intact, since a region can source many copies), clipped to the
        copied rectangle, and translated to their new location.

        Only the replayable part of the source is returned — commands
        are clipped to ``src_rect`` minus :meth:`uncovered_region`, so
        callers cover the remainder with RAW pixel data read from the
        source drawable and the two never overlap.
        """
        replay = Region.from_rect(src_rect).subtract(
            self.uncovered_region(src_rect))
        if replay.is_empty:
            return []
        replay_rects = list(replay)
        out: List[Command] = []
        for cmd in self._commands:
            if not cmd.dest.overlaps(src_rect):
                continue
            for part in cmd.clipped(replay_rects):
                out.append(part.translated(dx, dy))
        return out

    def uncovered_region(self, src_rect: Rect) -> Region:
        """The part of *src_rect* that replay cannot faithfully rebuild.

        This is where the translation layer falls back to RAW: pixels
        never described by queued opaque commands, plus areas tainted by
        transparent commands blending over undescribed content.
        """
        missing = Region.from_rect(src_rect).subtract(self._opaque_cover)
        return missing.union(self._tainted.intersect_rect(src_rect))

    def __repr__(self) -> str:
        return f"CommandQueue({len(self._commands)} commands)"
