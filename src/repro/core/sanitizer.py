"""Opt-in runtime sanitizer for the command queue and pipeline.

Section 4's correctness argument rests on an invariant nothing enforced
mechanically until now: *replaying the queued commands in arrival order
onto the region's previous base content reproduces the region's current
contents*.  With ``THINC_SANITIZE=1`` in the environment (or after
:func:`enable`), every :class:`~repro.core.command_queue.CommandQueue`
mutation re-checks the structural conditions that invariant decomposes
into, and every session's prepare-plane enqueue checks pipeline
ordering:

1. **arrival order** — queued sequence numbers are non-decreasing
   (clip fragments and merges inherit their ancestor's number);
2. **opaque-cover consistency** — every queued command's opaque
   footprint lies inside the queue's recorded opaque cover, and every
   transparent command's destination is covered or recorded as taint;
3. **no stale overlap surviving eviction** — a partial-class command
   may stay overlapped by newer opaque content only where a buffered
   COPY's source pinned it, and complete/transparent commands fully
   buried by newer opaque content (outside pins) must have been
   evicted;
4. **monotonic pipe tail** — per session, prepared commands reach the
   buffer stage in submission order even when a prepare-cache hit is
   ready before earlier work (see ``repro.core.pipeline``);
5. **spatial-index coherence** — the queue's tile-grid index and
   pinned-source map exactly mirror the queued commands after every
   mutation (see ``CommandQueue.audit_structures``), so the indexed
   eviction/copy fast paths can never silently diverge from the
   whole-queue semantics they replaced.

Pins are remembered across mutations (a COPY that pinned content may
itself be delivered and removed later), so the stale-overlap check
never false-positives on legally pinned survivors.

The sanitizer lives in ``repro.core`` — next to the structures it
checks and below everything that uses them — so that enabling it never
violates the layer map it shares a PR with.  The developer-facing
wiring (enable helpers, CI job, docs) is ``repro.analysis.sanitizer``.
"""

from __future__ import annotations

import os
from typing import Optional

from ..protocol.commands import OverwriteClass
from ..region import Region

__all__ = ["SanitizerError", "enabled", "enable", "disable",
           "QueueSanitizer", "for_queue", "check_pipe_tail",
           "check_prepare_pins"]


class SanitizerError(AssertionError):
    """A THINC invariant did not hold after a queue/pipeline mutation."""


_env = os.environ.get("THINC_SANITIZE", "")
_enabled = _env not in ("", "0", "false", "no")


def enabled() -> bool:
    """Is the sanitizer currently armed for newly created queues?"""
    return _enabled


def enable() -> None:
    global _enabled
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def for_queue(queue) -> Optional["QueueSanitizer"]:
    """The hook CommandQueue.__init__ calls: a sanitizer or None."""
    return QueueSanitizer() if _enabled else None


class QueueSanitizer:
    """Per-queue invariant checker; attached by ``for_queue``."""

    def __init__(self) -> None:
        # Every region ever pinned by a buffered COPY's source.  Only
        # grows (cleared with the queue): content legally left stale
        # under a pin stays legal after the pinning COPY is delivered.
        self._pinned_ever = Region()

    # -- mutation hooks ------------------------------------------------------

    def before_mutation(self, queue, newcomer=None) -> None:
        """Record the pin set the mutation will be judged against."""
        for cmd in queue._commands:
            src = getattr(cmd, "src_rect", None)
            if src is not None:
                self._pinned_ever.add(src)
        if newcomer is not None:
            src = getattr(newcomer, "src_rect", None)
            if src is not None:
                self._pinned_ever.add(src)

    def after_mutation(self, queue, op: str) -> None:
        self.check(queue, op)

    def after_add(self, queue, submitted, opaque: Region) -> None:
        """Incremental eviction check against the newcomer's opaque area.

        Burial is judged per newcomer: a complete/transparent command is
        only owed eviction when a *single* opaque add covers it (several
        partial covers legally leave it queued — replay still draws the
        newer content over it), so this check must run at add time with
        the submitted command's own opaque region, before merging
        widened it.
        """
        if opaque.is_empty:
            # Transparent: blending over content the queue does not
            # describe must have left a taint record, judged against the
            # submitted dest (a later merge may widen it legally).
            blended = Region.from_rect(submitted.dest).subtract(
                queue._opaque_cover)
            untracked = blended.subtract(queue._tainted)
            if not untracked.is_empty:
                raise SanitizerError(
                    f"after add of transparent {submitted!r}: blends over "
                    f"undescribed content at {list(untracked)} without a "
                    f"taint record — replay there is not faithful")
        else:
            effective = opaque.subtract(self._pinned_ever)
            if not effective.is_empty:
                for cmd in queue._commands[:-1]:
                    if cmd.seq >= submitted.seq:
                        continue
                    if cmd.overwrite_class is OverwriteClass.PARTIAL:
                        stale = effective.intersect_rect(cmd.dest)
                        if not stale.is_empty:
                            raise SanitizerError(
                                f"after add of {submitted!r}: partial-class "
                                f"{cmd!r} kept stale overlap at "
                                f"{list(stale)} — eviction failed to clip "
                                f"it")
                    elif effective.contains_rect(cmd.dest):
                        raise SanitizerError(
                            f"after add of {submitted!r}: "
                            f"{cmd.overwrite_class.value}-class {cmd!r} is "
                            f"fully buried by the new opaque content — "
                            f"eviction failed to drop it")
        self.check(queue, "add")

    def reset(self) -> None:
        """The queue was cleared; historical pins die with its contents."""
        self._pinned_ever = Region()

    # -- the checks ----------------------------------------------------------

    def check(self, queue, op: str = "mutation") -> None:
        commands = queue._commands
        cover = queue._opaque_cover

        # 1. Arrival order.
        last_seq = -1
        for cmd in commands:
            if cmd.seq < last_seq:
                raise SanitizerError(
                    f"after {op}: queue order violates arrival order "
                    f"(seq {cmd.seq} follows {last_seq}): {cmd!r}")
            last_seq = cmd.seq

        # 2. Opaque-cover consistency.  (The taint record for transparent
        # commands is checked per add in :meth:`after_add`: merging glyph
        # runs legally widens a transparent dest across zero-bit gap
        # columns that draw nothing and need no taint.)
        for cmd in commands:
            opaque = cmd.opaque_region
            if not opaque.is_empty:
                uncovered = opaque.subtract(cover)
                if not uncovered.is_empty:
                    raise SanitizerError(
                        f"after {op}: {cmd!r} draws opaque content at "
                        f"{list(uncovered)} outside the recorded opaque "
                        f"cover — replay bookkeeping is broken")

        # 3. No stale overlap surviving eviction.
        pinned = self._pinned_ever.copy()
        for cmd in commands:
            src = getattr(cmd, "src_rect", None)
            if src is not None:
                pinned.add(src)
        # One backward sweep accumulates the opaque content drawn after
        # each command.  Only partial-class commands owe a global
        # guarantee here — complete/transparent burial is judged per
        # add in :meth:`after_add`, because cumulative covers legally
        # leave them queued.
        later_opaque = Region()
        for cmd in reversed(commands):
            if (cmd.overwrite_class is OverwriteClass.PARTIAL
                    and later_opaque.overlaps_rect(cmd.dest)):
                stale = later_opaque.intersect_rect(cmd.dest)
                unpinned = stale.subtract(pinned)
                if not unpinned.is_empty:
                    raise SanitizerError(
                        f"after {op}: partial-class {cmd!r} survived "
                        f"with stale, unpinned overlap at "
                        f"{list(unpinned)} — eviction failed to clip it")
            opaque = cmd.opaque_region
            if not opaque.is_empty:
                later_opaque = later_opaque.union(opaque)

        # 5. Spatial-index coherence.
        audit = getattr(queue, "audit_structures", None)
        if audit is not None:
            problem = audit()
            if problem is not None:
                raise SanitizerError(f"after {op}: {problem}")

    def check_replace(self, queue, command, replacement, op: str) -> None:
        """A replace must swap in a true remainder of the original."""
        if replacement.seq != command.seq:
            raise SanitizerError(
                f"during {op}: replacement {replacement!r} changes the "
                f"arrival sequence number ({command.seq} -> "
                f"{replacement.seq})")
        if not command.dest.contains(replacement.dest):
            raise SanitizerError(
                f"during {op}: replacement {replacement!r} is not a "
                f"remainder of {command!r}")


def check_pipe_tail(session, ready: float) -> None:
    """Assert per-session submission-order delivery to the buffer stage.

    Called by ``THINCSession.enqueue_prepared`` with the clamped ready
    time; keeps its own shadow tail so a broken (or removed) clamp is
    caught the moment a prepare-cache hit tries to jump the queue.
    """
    if not _enabled:
        return
    shadow = getattr(session, "_sanitizer_tail", 0.0)
    if ready < shadow:
        raise SanitizerError(
            f"pipeline pipe-tail went backwards for {session!r}: "
            f"prepared command ready at {ready:.9f} would enter the "
            f"buffer stage before earlier work at {shadow:.9f}")
    session._sanitizer_tail = ready


def check_prepare_pins(plane) -> None:
    """Assert the prepare cache's pin bookkeeping is coherent.

    Called by ``PreparePlane`` after every trim/unpin and by the
    broadcast fan-out plane after relay-queue mutations.  A pinned
    entry is one still referenced by a pending broadcast class; the
    LRU must never evict it (the relay would re-prepare — or worse,
    deliver a stale re-encode under the old key), every pin must point
    at a live cache entry, and the cache may only exceed its LRU bound
    by the number of pinned entries.
    """
    if not _enabled:
        return
    pins = plane._pins
    for key, count in pins.items():
        if count <= 0:
            raise SanitizerError(
                f"prepare-cache pin refcount for {key!r} is {count}: "
                f"unpin underflow — a broadcast class released an entry "
                f"it never held")
        if key not in plane._cache:
            raise SanitizerError(
                f"prepare-cache entry {key!r} was evicted while pinned "
                f"({count} pending broadcast reference(s)) — the LRU "
                f"trim ignored a pin")
    if len(plane._cache) > plane.cache_entries + len(pins):
        raise SanitizerError(
            f"prepare cache holds {len(plane._cache)} entries with only "
            f"{len(pins)} pinned and a bound of {plane.cache_entries} — "
            f"trim failed to converge")
