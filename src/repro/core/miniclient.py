"""A minimal THINC client, written from the protocol alone.

The paper demonstrates client simplicity by implementing several
clients (a plain X application, a Java applet, Windows and PDA
clients).  This module is that demonstration for the reproduction: a
complete, independent client in well under a hundred effective lines,
using nothing but the wire parser and a pixel array — no shared code
with :class:`~repro.core.client.THINCClient` beyond the protocol
itself.  The equivalence test drives both clients from one server and
asserts pixel-identical screens.

Its five display operations map exactly onto Table 1's claim that the
protocol mirrors "operations commonly found in client display
hardware": array slice stores, slice copies, broadcast fills.
"""

from __future__ import annotations

import numpy as np

from ..protocol import wire
from ..protocol.commands import (BitmapCommand, CompositeCommand,
                                 CopyCommand, PFillCommand, RawCommand,
                                 SFillCommand, VideoFrameCommand)
from ..protocol.spec import CLIENT_ACCEPTS
from ..video import yuv

__all__ = ["MiniClient"]


class MiniClient:
    """The simplest possible conforming THINC display client."""

    def __init__(self, connection):
        # Even the minimal client enforces the spec's direction
        # contract (THL201): only server-to-client ids parse.
        self.parser = wire.StreamParser(allowed=CLIENT_ACCEPTS)
        self.pixels: np.ndarray = np.zeros((1, 1, 4), dtype=np.uint8)
        connection.down.connect(self.receive)

    def receive(self, chunk: bytes) -> None:
        """Feed network bytes; executes every completed message."""
        for message in self.parser.feed(chunk):
            self.handle(message)

    def handle(self, msg) -> None:
        if isinstance(msg, wire.ScreenInitMessage):
            self.pixels = np.zeros((msg.height, msg.width, 4),
                                   dtype=np.uint8)
            self.pixels[..., 3] = 255
        elif isinstance(msg, RawCommand):
            self._slice(msg.dest)[:] = msg.pixels
        elif isinstance(msg, SFillCommand):
            self._slice(msg.dest)[:] = np.array(msg.color, dtype=np.uint8)
        elif isinstance(msg, CopyCommand):
            block = self._slice(msg.src_rect).copy()
            self._slice(msg.dest)[:] = block
        elif isinstance(msg, PFillCommand):
            d, tile = msg.dest, msg.tile
            ys = (np.arange(d.y, d.y2) - msg.origin[1]) % tile.shape[0]
            xs = (np.arange(d.x, d.x2) - msg.origin[0]) % tile.shape[1]
            self._slice(d)[:] = tile[np.ix_(ys, xs)]
        elif isinstance(msg, BitmapCommand):
            view = self._slice(msg.dest)
            view[msg.mask] = np.array(msg.fg, dtype=np.uint8)
            if msg.bg is not None:
                view[~msg.mask] = np.array(msg.bg, dtype=np.uint8)
        elif isinstance(msg, CompositeCommand):
            view = self._slice(msg.dest)
            src = msg.pixels.astype(np.float64)
            alpha = src[..., 3:4] / 255.0
            view[..., :3] = np.clip(np.rint(
                src[..., :3] * alpha
                + view[..., :3].astype(np.float64) * (1 - alpha)),
                0, 255).astype(np.uint8)
            view[..., 3] = 255
        elif isinstance(msg, VideoFrameCommand):
            rgb = yuv.decode_frame(msg.pixel_format, msg.yuv_bytes,
                                   msg.src_width, msg.src_height)
            scaled = yuv.scale_rgb(rgb, msg.dest.width, msg.dest.height)
            self._slice(msg.dest)[..., :3] = scaled
            self._slice(msg.dest)[..., 3] = 255
        # Control messages (video lifecycle, cursor, audio) carry no
        # pixels; the minimal client ignores them.

    def _slice(self, rect) -> np.ndarray:
        return self.pixels[rect.y : rect.y2, rect.x : rect.x2]
