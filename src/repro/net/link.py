"""Network link parameters and the testbed's named configurations.

The paper evaluates three emulated environments (Section 8.1) plus the
real remote sites of Table 2.  A link is characterised by bandwidth,
round-trip time and the TCP window in force; the achievable throughput
of a window-limited TCP flow is ``min(bandwidth, window / RTT)`` — the
arithmetic behind both the WAN results and the Korea anomaly of
Figures 4 and 7.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["LinkParams", "LAN_DESKTOP", "WAN_DESKTOP", "PDA_80211G",
           "NETWORK_CONFIGS"]

MSS = 1460  # TCP maximum segment size used for packetisation


@dataclass(frozen=True)
class LinkParams:
    """A bidirectional network path between thin client and server."""

    name: str
    bandwidth_bps: float  # bottleneck bandwidth, bits per second
    rtt: float  # round-trip propagation time, seconds
    tcp_window: int = 1 << 20  # bytes (paper uses 1 MB where allowed)
    extra_hop_rtt: float = 0.0  # relay services (GoToMyPC) add a hop
    # Segment loss probability (wireless links); lost segments are
    # retransmitted one RTT later. The paper's 802.11g configuration
    # deliberately sets this to zero; the wireless ablation does not.
    loss_rate: float = 0.0

    def __post_init__(self):
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.rtt < 0 or self.extra_hop_rtt < 0:
            raise ValueError("RTTs must be non-negative")
        if self.tcp_window <= 0:
            raise ValueError("TCP window must be positive")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")

    @property
    def bytes_per_second(self) -> float:
        """Link bandwidth expressed in bytes per second."""
        return self.bandwidth_bps / 8.0

    @property
    def effective_rtt(self) -> float:
        """Round-trip time including any relay hop."""
        return self.rtt + self.extra_hop_rtt

    @property
    def effective_window(self) -> int:
        """The congestion-aware window: configured window capped by the
        Mathis steady-state TCP window ``MSS * sqrt(1.5 / p)`` under
        loss — how loss actually throttles a TCP flow."""
        if self.loss_rate <= 0:
            return self.tcp_window
        import math

        mathis = int(MSS * math.sqrt(1.5 / self.loss_rate))
        return max(MSS, min(self.tcp_window, mathis))

    @property
    def throughput(self) -> float:
        """Achievable bytes/s for one window-limited TCP flow."""
        rtt = max(self.effective_rtt, 1e-4)
        return min(self.bytes_per_second, self.effective_window / rtt)

    def with_relay(self, extra_rtt: float) -> "LinkParams":
        """The same path routed through an intermediate hosted server."""
        return replace(self, extra_hop_rtt=extra_rtt,
                       name=f"{self.name}+relay")

    def with_loss(self, loss_rate: float) -> "LinkParams":
        """The same path with wireless-style segment loss."""
        return replace(self, loss_rate=loss_rate,
                       name=f"{self.name}+loss{loss_rate:g}")


# The three testbed configurations of Section 8.1.
LAN_DESKTOP = LinkParams("LAN Desktop", bandwidth_bps=100e6, rtt=0.0002)
WAN_DESKTOP = LinkParams("WAN Desktop", bandwidth_bps=100e6, rtt=0.066)
PDA_80211G = LinkParams("802.11g PDA", bandwidth_bps=24e6, rtt=0.0002)

NETWORK_CONFIGS = {
    "lan": LAN_DESKTOP,
    "wan": WAN_DESKTOP,
    "pda": PDA_80211G,
}
