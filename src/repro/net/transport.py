"""A fluid-model TCP-like transport over the simulated network.

Each :class:`Connection` provides two half-duplex byte pipes between a
server endpoint and a client endpoint.  The model captures exactly the
effects the paper's evaluation turns on:

* **propagation latency** — every byte arrives one-way-delay after it
  is transmitted;
* **bandwidth** — the sender serialises at the link rate;
* **TCP windowing** — no more than ``tcp_window`` bytes may be in
  flight (unacknowledged); the effective throughput of the pipe is
  therefore ``min(bandwidth, window / RTT)``, which is what strangles
  the Korea site in Figures 4 and 7; and
* **back-pressure** — a bounded send buffer makes writes non-blocking
  at the API (``writable_bytes`` says how much more fits), which is the
  condition THINC's flush handlers probe.

Data is packetised in MSS-sized segments so the packet monitor sees a
realistic trace for slow-motion benchmarking.
"""

from __future__ import annotations

import random
import zlib
from typing import Callable, Optional

from .clock import EventLoop
from .link import MSS, LinkParams

__all__ = ["Endpoint", "Connection"]

Receiver = Callable[[bytes], None]


class Endpoint:
    """One direction of a connection, seen from the sender's side."""

    def __init__(self, loop: EventLoop, link: LinkParams, label: str,
                 monitor=None, send_buffer: Optional[int] = None):
        self.loop = loop
        self.link = link
        self.label = label
        self.monitor = monitor
        # Bounded send buffer: this is what produces back-pressure.
        # Defaults to a realistic socket buffer, capped by the window.
        self.send_buffer_limit = send_buffer or min(link.tcp_window,
                                                    256 * 1024)
        self._buffer = bytearray()
        self._inflight = 0  # bytes sent but not yet acknowledged
        self._wire_free_at = 0.0  # when the serialiser is next idle
        self._deliver_free_at = 0.0  # in-order delivery horizon
        self._pump_scheduled = False
        self._receiver: Optional[Receiver] = None
        self.closed = False
        self.bytes_sent = 0
        self.segments_sent = 0
        self.segments_lost = 0
        self.bytes_dropped_closed = 0
        # Deterministic loss process per endpoint/direction.  Seeded
        # from a stable digest: ``hash()`` of a string is randomised
        # per process (PYTHONHASHSEED), which would make the "same"
        # simulation lose different segments on every run.
        self._loss_rng = random.Random(
            zlib.crc32(f"{label}|{link.name}".encode("utf-8")) & 0xFFFF)

    # -- wiring -----------------------------------------------------------

    def connect(self, receiver: Receiver) -> None:
        """Register the function that receives delivered segments."""
        self._receiver = receiver

    def disconnect(self) -> None:
        """Detach the receiver: delivered segments fall on the floor.

        Used when a session or client rebinds to a new connection; the
        abandoned endpoint may still have segments in flight, and those
        must not reach the new parser.
        """
        self._receiver = None

    def close(self) -> None:
        """Model an abrupt socket loss for this direction.

        Buffered and in-flight bytes are lost, nothing is delivered or
        acked any more, and the endpoint stops accepting writes
        (``writable_bytes`` reports 0, so well-behaved flush code sees
        permanent back-pressure rather than an exception).
        """
        self.closed = True
        self._buffer.clear()

    # -- sender API (non-blocking socket model) ------------------------------

    def writable_bytes(self) -> int:
        """How many bytes a write may currently enqueue without blocking."""
        if self.closed:
            return 0
        return max(0, self.send_buffer_limit - len(self._buffer))

    def write(self, data: bytes) -> None:
        """Enqueue bytes; raises if the caller ignored writable_bytes()."""
        if self.closed:
            # A dead socket swallows the write; the missing ack stream
            # is what the sender eventually notices.
            self.bytes_dropped_closed += len(data)
            return
        if len(data) > self.writable_bytes():
            raise BlockingIOError(
                f"{self.label}: write of {len(data)} bytes exceeds buffer "
                f"room {self.writable_bytes()}"
            )
        self._buffer.extend(data)
        self._schedule_pump()

    @property
    def queued_bytes(self) -> int:
        """Bytes buffered or in flight (0 means fully delivered)."""
        return len(self._buffer) + self._inflight

    # -- internal fluid machinery ---------------------------------------------

    def _schedule_pump(self) -> None:
        if not self._pump_scheduled:
            self._pump_scheduled = True
            delay = max(0.0, self._wire_free_at - self.loop.now)
            self.loop.schedule(delay, self._pump)

    def _pump(self) -> None:
        """Move segments from the buffer onto the wire, window allowing."""
        self._pump_scheduled = False
        window = self.link.effective_window
        while self._buffer and self._inflight + MSS <= window:
            segment = bytes(self._buffer[:MSS])
            del self._buffer[: len(segment)]
            self._inflight += len(segment)
            tx_time = len(segment) / self.link.bytes_per_second
            start = max(self.loop.now, self._wire_free_at)
            self._wire_free_at = start + tx_time
            arrive = self._wire_free_at + self.link.effective_rtt / 2
            if self.link.loss_rate > 0 and \
                    self._loss_rng.random() < self.link.loss_rate:
                # Lost in flight: detected and retransmitted roughly one
                # RTT later (fast-retransmit model); the window stays
                # occupied meanwhile, throttling the flow like real TCP.
                self.segments_lost += 1
                arrive += self.link.effective_rtt
            # TCP delivers in order: a retransmission head-of-line
            # blocks every later segment.
            arrive = max(arrive, self._deliver_free_at)
            self._deliver_free_at = arrive
            self.loop.schedule_at(arrive,
                                  lambda s=segment: self._deliver(s))
            self.bytes_sent += len(segment)
            self.segments_sent += 1
        # If window-blocked, the ack path will reschedule us.

    def _deliver(self, segment: bytes) -> None:
        if self.closed:
            return
        if self.monitor is not None:
            self.monitor.record(self.loop.now, self.label, len(segment))
        if self._receiver is not None:
            self._receiver(segment)
        # The ack returns half an RTT later, freeing window space.
        self.loop.schedule(self.link.effective_rtt / 2,
                           lambda n=len(segment): self._acked(n))

    def _acked(self, n: int) -> None:
        self._inflight -= n
        if self._buffer:
            self._schedule_pump()


class Connection:
    """A bidirectional client/server connection over one link."""

    def __init__(self, loop: EventLoop, link: LinkParams, monitor=None,
                 send_buffer: Optional[int] = None):
        self.loop = loop
        self.link = link
        self.down = self._make_endpoint(loop, link, "server->client",
                                        monitor, send_buffer)
        self.up = self._make_endpoint(loop, link, "client->server",
                                      monitor, send_buffer)

    def _make_endpoint(self, loop: EventLoop, link: LinkParams, label: str,
                       monitor, send_buffer: Optional[int]) -> Endpoint:
        """Endpoint factory; subclasses substitute instrumented ones."""
        return Endpoint(loop, link, label, monitor, send_buffer)

    def connect(self, client_receiver: Receiver,
                server_receiver: Receiver) -> None:
        self.down.connect(client_receiver)
        self.up.connect(server_receiver)

    def close(self) -> None:
        """Abruptly drop the connection in both directions."""
        self.down.close()
        self.up.close()

    @property
    def closed(self) -> bool:
        return self.down.closed or self.up.closed

    def idle(self) -> bool:
        """True when both directions have nothing queued or in flight."""
        return self.down.queued_bytes == 0 and self.up.queued_bytes == 0
