"""Simulation clock and discrete-event loop.

The whole testbed — applications, window server, thin-client protocol
stacks and the network — runs against one simulated clock.  Events are
(time, callback) pairs in a heap; ties break by scheduling order so
runs are fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

__all__ = ["SimClock", "EventLoop"]


class SimClock:
    """Monotonically advancing simulated time, in seconds."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance_to(self, t: float) -> None:
        """Move time forward to *t*; time never goes backwards."""
        if t < self.now:
            raise ValueError(f"time cannot move backwards ({t} < {self.now})")
        self.now = t


class EventLoop:
    """A deterministic discrete-event scheduler."""

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock or SimClock()
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self.events_run = 0

    @property
    def now(self) -> float:
        return self.clock.now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run *callback* after *delay* seconds of simulated time."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        heapq.heappush(self._heap,
                       (self.clock.now + delay, next(self._seq), callback))

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run *callback* at absolute simulated *time*."""
        if time < self.clock.now:
            raise ValueError("cannot schedule in the past")
        heapq.heappush(self._heap, (time, next(self._seq), callback))

    def pending(self) -> int:
        """Number of events still scheduled."""
        return len(self._heap)

    def run_until(self, t: float, max_events: int = 10_000_000) -> None:
        """Run all events with timestamp <= t, then set the clock to t."""
        count = 0
        while self._heap and self._heap[0][0] <= t:
            when, _, callback = heapq.heappop(self._heap)
            self.clock.advance_to(when)
            callback()
            count += 1
            self.events_run += 1
            if count > max_events:
                raise RuntimeError(
                    "event budget exhausted; likely a scheduling loop")
        self.clock.advance_to(t)

    def run_until_idle(self, max_time: float = float("inf"),
                       max_events: int = 10_000_000) -> float:
        """Run until no events remain (or *max_time*); returns end time."""
        count = 0
        while self._heap and self._heap[0][0] <= max_time:
            when, _, callback = heapq.heappop(self._heap)
            self.clock.advance_to(when)
            callback()
            count += 1
            self.events_run += 1
            if count > max_events:
                raise RuntimeError(
                    "event budget exhausted; likely a scheduling loop")
        return self.clock.now
