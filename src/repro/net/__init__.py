"""Discrete-event network simulation: clock, links, transport, faults."""

from .clock import EventLoop, SimClock
from .faults import (Corruption, Disconnect, FaultPlan, FaultyConnection,
                     FaultyEndpoint, LossBurst, Partition, Stall,
                     dial_factory)
from .link import (LAN_DESKTOP, MSS, NETWORK_CONFIGS, PDA_80211G,
                   WAN_DESKTOP, LinkParams)
from .monitor import PacketMonitor, PacketRecord, RollingRateEstimator
from .transport import Connection, Endpoint

__all__ = [
    "SimClock",
    "EventLoop",
    "LinkParams",
    "LAN_DESKTOP",
    "WAN_DESKTOP",
    "PDA_80211G",
    "NETWORK_CONFIGS",
    "MSS",
    "Connection",
    "Endpoint",
    "PacketMonitor",
    "PacketRecord",
    "RollingRateEstimator",
    "FaultPlan",
    "LossBurst",
    "Stall",
    "Partition",
    "Disconnect",
    "Corruption",
    "FaultyEndpoint",
    "FaultyConnection",
    "dial_factory",
]
