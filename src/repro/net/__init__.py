"""Discrete-event network simulation: clock, links, transport, monitor."""

from .clock import EventLoop, SimClock
from .link import (LAN_DESKTOP, MSS, NETWORK_CONFIGS, PDA_80211G,
                   WAN_DESKTOP, LinkParams)
from .monitor import PacketMonitor, PacketRecord
from .transport import Connection, Endpoint

__all__ = [
    "SimClock",
    "EventLoop",
    "LinkParams",
    "LAN_DESKTOP",
    "WAN_DESKTOP",
    "PDA_80211G",
    "NETWORK_CONFIGS",
    "MSS",
    "Connection",
    "Endpoint",
    "PacketMonitor",
    "PacketRecord",
]
