"""Packet monitor for slow-motion benchmarking.

The paper measures the closed commercial systems non-invasively, by
capturing network traffic and reading latencies and data volumes out of
the trace (Section 8.2, citing the slow-motion benchmarking
methodology).  This monitor plays the Ethereal role: every delivered
segment is recorded with its timestamp and direction, and the analysis
helpers extract the same measures the paper reports.

Records arrive in time order (the transport stamps them with the
monotone loop clock), so the analysis helpers answer windowed queries
from per-direction bisect indexes with byte-prefix sums instead of
rescanning the whole trace: the QoS controller polls the downlink rate
every tick without going quadratic in trace length.  Should a caller
ever record out of order, every query falls back to the original
full-trace scan, so results are identical either way.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["PacketRecord", "PacketMonitor", "RollingRateEstimator"]


@dataclass(frozen=True)
class PacketRecord:
    time: float
    direction: str  # "server->client" or "client->server"
    size: int


class _DirectionIndex:
    """Sorted timestamps plus a byte-prefix-sum for one direction."""

    __slots__ = ("times", "prefix")

    def __init__(self) -> None:
        self.times: List[float] = []
        # prefix[k] == bytes of the first k records; prefix[0] == 0.
        self.prefix: List[int] = [0]

    def add(self, time: float, size: int) -> None:
        self.times.append(time)
        self.prefix.append(self.prefix[-1] + size)

    def total(self, start: float, end: float) -> int:
        lo = bisect_left(self.times, start)
        hi = bisect_right(self.times, end)
        if hi <= lo:  # empty (or inverted) window
            return 0
        return self.prefix[hi] - self.prefix[lo]

    def first(self, after: float) -> Optional[float]:
        i = bisect_left(self.times, after)
        return self.times[i] if i < len(self.times) else None

    def last(self, before: float) -> Optional[float]:
        i = bisect_right(self.times, before) - 1
        return self.times[i] if i >= 0 else None

    def size_at(self, i: int) -> int:
        return self.prefix[i + 1] - self.prefix[i]


class PacketMonitor:
    """Records every segment crossing the emulated network."""

    def __init__(self) -> None:
        self.records: List[PacketRecord] = []
        self.marks: List[Tuple[float, str]] = []
        self._all = _DirectionIndex()
        self._by_dir: Dict[str, _DirectionIndex] = {}
        self._monotone = True
        self._last_time = float("-inf")
        # Bumped by clear(); lets estimators notice a trace reset.
        self._generation = 0

    def record(self, time: float, direction: str, size: int) -> None:
        """Log one delivered segment (called by the transport)."""
        self.records.append(PacketRecord(time, direction, size))
        if time < self._last_time:
            self._monotone = False
        else:
            self._last_time = time
        self._all.add(time, size)
        idx = self._by_dir.get(direction)
        if idx is None:
            idx = self._by_dir[direction] = _DirectionIndex()
        idx.add(time, size)

    def mark(self, time: float, label: str) -> None:
        """Drop an analysis marker (e.g. page-load click) into the trace."""
        self.marks.append((time, label))

    def clear(self) -> None:
        """Drop all records and marks (between benchmark phases)."""
        self.records = []
        self.marks = []
        self._all = _DirectionIndex()
        self._by_dir = {}
        self._monotone = True
        self._last_time = float("-inf")
        self._generation += 1

    def _index(self, direction: Optional[str]) -> _DirectionIndex:
        if direction is None:
            return self._all
        idx = self._by_dir.get(direction)
        if idx is None:
            idx = self._by_dir[direction] = _DirectionIndex()
        return idx

    # -- analysis -----------------------------------------------------------

    def total_bytes(self, direction: Optional[str] = None,
                    start: float = float("-inf"),
                    end: float = float("inf")) -> int:
        if not self._monotone:
            return sum(r.size for r in self.records
                       if (direction is None or r.direction == direction)
                       and start <= r.time <= end)
        return self._index(direction).total(start, end)

    def first_packet_time(self, direction: Optional[str] = None,
                          after: float = float("-inf")) -> Optional[float]:
        if not self._monotone:
            for r in self.records:
                if (direction is None or r.direction == direction) \
                        and r.time >= after:
                    return r.time
            return None
        return self._index(direction).first(after)

    def last_packet_time(self, direction: Optional[str] = None,
                         before: float = float("inf")) -> Optional[float]:
        if not self._monotone:
            result = None
            for r in self.records:
                if (direction is None or r.direction == direction) \
                        and r.time <= before:
                    result = r.time
            return result
        return self._index(direction).last(before)

    def span_latency(self, start: float, end: float = float("inf"),
                     direction: str = "server->client") -> Optional[float]:
        """Slow-motion page latency: from an input mark to the last
        data packet of the response burst."""
        last = self.last_packet_time(direction, before=end)
        if last is None or last < start:
            return None
        return last - start

    def rate(self, direction: Optional[str] = None, window: float = 0.25,
             now: float = 0.0) -> float:
        """Bits per second delivered over the trailing *window* ending
        at *now* (inclusive on both ends, like :meth:`total_bytes`)."""
        if window <= 0:
            raise ValueError("window must be positive")
        return self.total_bytes(direction, start=now - window,
                                end=now) * 8.0 / window

    def __len__(self) -> int:
        return len(self.records)


class RollingRateEstimator:
    """Amortised-O(1) trailing-window rate over one monitor direction.

    Each :meth:`update` advances two cursors monotonically over the
    direction's index — every record enters and leaves the window at
    most once — so polling every tick costs O(1) amortised instead of a
    bisect (let alone a full rescan) per poll.  The returned rate is
    exactly ``monitor.rate(direction, window, now)`` for monotone
    *now* sequences (the only kind the loop clock produces).
    """

    def __init__(self, monitor: PacketMonitor,
                 direction: Optional[str] = None,
                 window: float = 0.25) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.monitor = monitor
        self.direction = direction
        self.window = window
        self._head = 0
        self._tail = 0
        self._bytes = 0
        self._generation = monitor._generation

    def update(self, now: float) -> float:
        """Advance the window to end at *now*; return bits per second."""
        if self._generation != self.monitor._generation:
            self._head = self._tail = self._bytes = 0
            self._generation = self.monitor._generation
        idx = self.monitor._index(self.direction)
        times = idx.times
        while self._tail < len(times) and times[self._tail] <= now:
            self._bytes += idx.size_at(self._tail)
            self._tail += 1
        cutoff = now - self.window
        while self._head < self._tail and times[self._head] < cutoff:
            self._bytes -= idx.size_at(self._head)
            self._head += 1
        return self._bytes * 8.0 / self.window
