"""Packet monitor for slow-motion benchmarking.

The paper measures the closed commercial systems non-invasively, by
capturing network traffic and reading latencies and data volumes out of
the trace (Section 8.2, citing the slow-motion benchmarking
methodology).  This monitor plays the Ethereal role: every delivered
segment is recorded with its timestamp and direction, and the analysis
helpers extract the same measures the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["PacketRecord", "PacketMonitor"]


@dataclass(frozen=True)
class PacketRecord:
    time: float
    direction: str  # "server->client" or "client->server"
    size: int


class PacketMonitor:
    """Records every segment crossing the emulated network."""

    def __init__(self) -> None:
        self.records: List[PacketRecord] = []
        self.marks: List[Tuple[float, str]] = []

    def record(self, time: float, direction: str, size: int) -> None:
        """Log one delivered segment (called by the transport)."""
        self.records.append(PacketRecord(time, direction, size))

    def mark(self, time: float, label: str) -> None:
        """Drop an analysis marker (e.g. page-load click) into the trace."""
        self.marks.append((time, label))

    def clear(self) -> None:
        """Drop all records and marks (between benchmark phases)."""
        self.records = []
        self.marks = []

    # -- analysis -----------------------------------------------------------

    def total_bytes(self, direction: Optional[str] = None,
                    start: float = float("-inf"),
                    end: float = float("inf")) -> int:
        return sum(r.size for r in self.records
                   if (direction is None or r.direction == direction)
                   and start <= r.time <= end)

    def first_packet_time(self, direction: Optional[str] = None,
                          after: float = float("-inf")) -> Optional[float]:
        for r in self.records:
            if (direction is None or r.direction == direction) \
                    and r.time >= after:
                return r.time
        return None

    def last_packet_time(self, direction: Optional[str] = None,
                         before: float = float("inf")) -> Optional[float]:
        result = None
        for r in self.records:
            if (direction is None or r.direction == direction) \
                    and r.time <= before:
                result = r.time
        return result

    def span_latency(self, start: float, end: float = float("inf"),
                     direction: str = "server->client") -> Optional[float]:
        """Slow-motion page latency: from an input mark to the last
        data packet of the response burst."""
        last = self.last_packet_time(direction, before=end)
        if last is None or last < start:
            return None
        return last - start

    def __len__(self) -> int:
        return len(self.records)
