"""The live-rig fuzz harness.

One fuzz run builds a real server rig — event loop, fluid transport,
window server, an *honest* client running a scripted workload — and
co-locates a hostile connection that feeds seed-driven mutated frames
into the server's uplink for the whole scenario.  When the hostile
session gets itself quarantined (by design it quickly will), the
harness re-dials, exercising admission control and the typed denial
path too.

The contract checked after every run:

* **liveness** — no exception escapes the event loop, and the run
  drains to idle (a wedged parser or scheduling loop trips the event
  budget instead of hanging CI);
* **isolation** — the honest session ends pixel-identical to the
  server screen *and* to an unfuzzed twin run of the same scenario
  seed: hostile bytes may not perturb an honest co-resident session by
  a single pixel;
* **bounded memory** — every session's queue, audio/control backlog
  and parser residue end within the governor's budget, and the session
  table never exceeds the admission cap.

Any violating input is written to the crash corpus (see
:mod:`repro.fuzz.corpus`) where the test suite replays it forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core import THINCClient, THINCServer
from ..core.governor import AdmissionDenied, Budget, ServerBudget
from ..display import WindowServer
from ..net import Connection, EventLoop, LAN_DESKTOP
from ..protocol.limits import LIMITS
from ..region import Rect
from . import corpus as corpus_mod
from .mutator import Mutator

__all__ = ["FuzzConfig", "FuzzReport", "run_fuzz", "replay_corpus"]

import numpy as np


def _fuzz_budget() -> Budget:
    """A deliberately tight budget so fuzz runs exercise the whole
    response ladder, not just the decode layer."""
    return Budget(
        degrade_queue_bytes=256 << 10,
        max_queue_bytes=1 << 20,
        evict_queue_bytes=2 << 20,
        max_audio_backlog_bytes=64 << 10,
        max_control_backlog_bytes=256 << 10,
        max_journal_bytes=1 << 20,
        uplink_msgs_per_sec=2000.0,
        uplink_burst=4000,
    )


@dataclass
class FuzzConfig:
    """One fuzz scenario; everything derives from ``seed``."""

    seed: int = 1
    cases: int = 500          # mutated inputs fed to the server
    width: int = 96
    height: int = 64
    duration: float = 2.0     # seconds of simulated scenario time
    drain: float = 30.0       # extra simulated time allowed to go idle
    workload_seed: int = 7
    workload_step: float = 0.05
    redial_every: int = 8     # fresh hostile connection every N cases
    max_redials: int = 4096   # hard cap on hostile re-attaches
    crash_dir: Optional[str] = None
    budget: Budget = field(default_factory=_fuzz_budget)
    server_budget: ServerBudget = field(
        default_factory=lambda: ServerBudget(max_sessions=8,
                                             retry_after=0.25))


@dataclass
class FuzzReport:
    """Outcome of one fuzz run; ``ok`` is the headline verdict."""

    seed: int = 0
    cases: int = 0
    new_signatures: int = 0
    quarantined: int = 0
    evicted: int = 0
    wire_errors: int = 0
    uplink_throttled: int = 0
    admission_denied: int = 0
    redials: int = 0
    end_time: float = 0.0
    honest_identical: bool = False
    twin_identical: bool = False
    budget_ok: bool = False
    failures: List[str] = field(default_factory=list)
    crash_files: List[str] = field(default_factory=list)
    mutation_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        verdict = "OK" if self.ok else "FAIL"
        line = (f"seed {self.seed}: {verdict} — {self.cases} cases, "
                f"{self.new_signatures} signatures, "
                f"{self.wire_errors} wire errors, "
                f"{self.quarantined} quarantines, "
                f"{self.admission_denied} admissions denied, "
                f"honest pixel-identical={self.honest_identical}, "
                f"twin-identical={self.twin_identical}, "
                f"budget-compliant={self.budget_ok}")
        for failure in self.failures:
            line += f"\n  FAILURE: {failure}"
        return line


def _scripted_workload(loop: EventLoop, ws: WindowServer, end: float,
                       step: float, seed: int) -> None:
    """The chaos harness's deterministic mixed workload (fills, images,
    glyph text, copies), duplicated here because src code cannot import
    the test helpers.  Same seed → same draws at the same times."""
    rng = np.random.default_rng(seed)
    W, H = ws.screen.bounds.width, ws.screen.bounds.height
    ws.fill_rect(ws.screen, ws.screen.bounds, (255, 255, 255, 255))
    t = step
    while t < end:
        op = int(rng.integers(0, 4))
        x, y = int(rng.integers(0, W - 16)), int(rng.integers(0, H - 16))
        w, h = int(rng.integers(4, 16)), int(rng.integers(4, 16))
        color = tuple(int(v) for v in rng.integers(0, 256, 3)) + (255,)
        if op == 0:
            loop.schedule_at(t, lambda r=Rect(x, y, w, h), c=color:
                             ws.fill_rect(ws.screen, r, c))
        elif op == 1:
            img = rng.integers(0, 256, (h, w, 4), dtype=np.uint8)
            loop.schedule_at(t, lambda r=Rect(x, y, w, h), i=img:
                             ws.put_image(ws.screen, r, i))
        elif op == 2:
            loop.schedule_at(t, lambda x=x, y=y, c=color:
                             ws.draw_text(ws.screen, x, y, "thinc", c))
        else:
            loop.schedule_at(t, lambda x=x, y=y:
                             ws.copy_area(ws.screen, ws.screen,
                                          Rect(0, 0, 24, 24), x, y))
        t += step


class _Rig:
    """Loop + server + honest client, optionally with hostile traffic."""

    def __init__(self, config: FuzzConfig):
        self.config = config
        self.loop = EventLoop()
        self.server = THINCServer(self.loop, config.width, config.height,
                                  budget=config.budget,
                                  server_budget=config.server_budget)
        self.ws = WindowServer(config.width, config.height,
                               driver=self.server.driver,
                               clock=self.loop.clock)
        self.honest_conn = Connection(self.loop, LAN_DESKTOP)
        self.server.attach_client(self.honest_conn)
        self.honest = THINCClient(self.loop, self.honest_conn)
        _scripted_workload(self.loop, self.ws, config.duration,
                           config.workload_step, config.workload_seed)

    def run(self) -> float:
        end = self.config.duration + self.config.drain
        return self.loop.run_until_idle(max_time=end)


def run_fuzz(config: FuzzConfig) -> FuzzReport:
    """Execute one fuzz scenario; never raises — all violations are
    recorded in the report (and the crash corpus)."""
    report = FuzzReport(seed=config.seed, cases=config.cases)

    # Twin run first: the honest scenario with no hostile connection.
    twin = _Rig(config)
    twin.run()
    twin_pixels = None
    if twin.honest.fb is not None:
        twin_pixels = twin.honest.fb.data.tobytes()

    rig = _Rig(config)
    mutator = Mutator(config.seed, corpus_mod.seed_corpus(
        config.width, config.height))
    state = {"conn": None, "sent": 0, "redials": 0, "case": None}

    def dial_hostile() -> None:
        conn = Connection(rig.loop, LAN_DESKTOP)
        try:
            rig.server.attach_client(conn)
        except AdmissionDenied:
            report.admission_denied += 1
            return
        state["conn"] = conn

    def hostile_session():
        for sess in rig.server.sessions:
            if sess.connection is state["conn"]:
                return sess
        return None

    def send_case() -> None:
        if state["sent"] >= config.cases:
            return
        sess = hostile_session()
        # Redial on a fresh connection every few cases: a single
        # length-lying frame legally makes the parser wait for bytes
        # that never come, and a stream fuzzer that never redials would
        # hide every later case inside that phantom payload.
        stale = state["sent"] % config.redial_every == 0
        if (state["conn"] is None or sess is None or sess.quarantined
                or stale) and state["redials"] < config.max_redials:
            if sess is not None and sess in rig.server.sessions:
                rig.server.detach_client(sess)
            state["redials"] += 1
            dial_hostile()
        state["sent"] += 1
        data = mutator.next_case()
        state["case"] = data
        conn = state["conn"]
        if conn is not None:
            room = conn.up.writable_bytes()
            if room > 0:
                conn.up.write(data[:room])
        rig.loop.schedule(interval, send_case)

    interval = config.duration / max(config.cases, 1)
    rig.loop.schedule_at(0.0, send_case)

    try:
        report.end_time = rig.run()
    except Exception as exc:  # noqa: BLE001 — the whole point: catch it all
        report.failures.append(
            f"exception escaped the event loop: {exc!r}")
        if config.crash_dir is not None and state["case"] is not None:
            report.crash_files.append(corpus_mod.save_crash(
                config.crash_dir, config.seed, state["sent"],
                state["case"]))

    # -- verdicts -----------------------------------------------------------

    gstats = rig.server.governor.stats
    report.new_signatures = mutator.stats["new_signatures"]
    report.mutation_stats = dict(mutator.stats)
    report.quarantined = gstats.quarantined
    report.evicted = gstats.evicted
    report.wire_errors = gstats.wire_errors
    report.uplink_throttled = gstats.uplink_throttled
    report.admission_denied += gstats.admission_denied
    report.redials = state["redials"]

    honest_fb = rig.honest.fb
    if honest_fb is None:
        report.failures.append("honest client never got a framebuffer")
    else:
        report.honest_identical = honest_fb.same_as(rig.ws.screen.fb)
        if not report.honest_identical:
            report.failures.append(
                "honest session diverged from the server screen")
        report.twin_identical = (
            twin_pixels is not None
            and honest_fb.data.tobytes() == twin_pixels)
        if not report.twin_identical:
            report.failures.append(
                "honest session differs from the unfuzzed twin run")

    report.budget_ok = True
    budget = config.budget
    if len(rig.server.sessions) > config.server_budget.max_sessions:
        report.budget_ok = False
        report.failures.append("session table exceeded the admission cap")
    for sess in rig.server.sessions:
        checks = (
            (sess.buffer.pending_bytes(), budget.evict_queue_bytes,
             "command queue"),
            (sess.audio_backlog_bytes, budget.max_audio_backlog_bytes,
             "audio backlog"),
            (sess.control_backlog_bytes, budget.max_control_backlog_bytes,
             "control backlog"),
            (sess._parser.pending_bytes, LIMITS.max_uplink_pending_bytes,
             "parser residue"),
        )
        for value, cap, what in checks:
            if value > cap:
                report.budget_ok = False
                report.failures.append(
                    f"{what} ended at {value} bytes, budget is {cap}")
    return report


def replay_corpus(path: str, config: Optional[FuzzConfig] = None
                  ) -> List[Tuple[str, FuzzReport]]:
    """Replay every crash-corpus input as a tiny scenario of its own;
    returns (filename, report) pairs.  An empty corpus replays clean."""
    config = config or FuzzConfig()
    out = []
    for index, data in enumerate(corpus_mod.load_crash_corpus(path)):
        cfg = FuzzConfig(seed=config.seed, cases=1, width=config.width,
                         height=config.height, duration=0.5,
                         budget=config.budget,
                         server_budget=config.server_budget)
        report = FuzzReport(seed=cfg.seed, cases=1)
        rig = _Rig(cfg)
        conn = Connection(rig.loop, LAN_DESKTOP)
        try:
            rig.server.attach_client(conn)
            rig.loop.schedule_at(
                0.0, lambda c=conn, d=data:
                c.up.write(d[:c.up.writable_bytes()]))
            report.end_time = rig.run()
        except Exception as exc:  # noqa: BLE001
            report.failures.append(
                f"exception escaped the event loop: {exc!r}")
        honest_fb = rig.honest.fb
        if honest_fb is None or not honest_fb.same_as(rig.ws.screen.fb):
            report.failures.append(
                "honest session diverged from the server screen")
        else:
            report.honest_identical = True
        out.append((f"case-{index:04d}", report))
    return out
