"""Seed-driven mutation with outcome-signature coverage guidance.

All randomness flows from one ``random.Random(seed)``: the same seed
replays the same mutation sequence byte-for-byte, which is what lets a
CI finding be reproduced locally with nothing but the seed number.

Coverage guidance is AFL's trick scaled to this codebase: an input is
interesting if it produced an *outcome signature* no earlier input
produced.  The signature is computed by replaying the bytes through a
fresh bounded :class:`~repro.protocol.wire.StreamParser` and recording
(message types parsed, exception class raised, residue bucket of bytes
left pending).  Interesting inputs join the mutation pool, so the
fuzzer walks progressively deeper into the decoder instead of
resampling the same shallow failures.
"""

from __future__ import annotations

import random
from typing import List, Optional, Set, Tuple

from ..protocol import wire
from ..protocol.limits import LIMITS
from ..protocol.spec import UPLINK_TYPE_IDS

__all__ = ["Mutator", "CoveragePool", "outcome_signature"]

Signature = Tuple[Tuple[str, ...], str, int]

# Type ids worth swapping in: every uplink id, every downlink-only id
# (must be rejected by direction), a display command, and junk.
_SWAP_IDS = sorted(UPLINK_TYPE_IDS) + [1, 16, 22, 26, 31, 0, 99, 255]


def outcome_signature(data: bytes) -> Signature:
    """What happened when the server-side parser ate *data*.

    Runs the same parser configuration the server uses for uplink
    traffic, so signatures map one-to-one onto server-visible decode
    outcomes.
    """
    parser = wire.StreamParser(
        max_frame=LIMITS.max_uplink_frame_bytes,
        max_pending=LIMITS.max_uplink_pending_bytes,
        allowed=UPLINK_TYPE_IDS)
    types: Set[str] = set()
    exc_name = ""
    try:
        for msg in parser.feed(data):
            types.add(type(msg).__name__)
    except wire.ProtocolError as exc:
        exc_name = type(exc).__name__
    # Residue bucket: log2-ish scale of bytes left waiting for a frame
    # that never completed (0, 1-8, 9-64, 65-512, ...).
    pending = parser.pending_bytes
    bucket = 0
    while pending:
        bucket += 1
        pending >>= 3
    return (tuple(sorted(types)), exc_name, bucket)


class CoveragePool:
    """Inputs that produced a signature nothing before them produced."""

    def __init__(self, seeds: List[bytes]):
        self.entries: List[bytes] = list(seeds)
        self.seen: Set[Signature] = {outcome_signature(s) for s in seeds}

    def offer(self, data: bytes) -> bool:
        """Add *data* if its outcome is new; True when it was."""
        sig = outcome_signature(data)
        if sig in self.seen:
            return False
        self.seen.add(sig)
        self.entries.append(data)
        return True


class Mutator:
    """One deterministic stream of mutated inputs."""

    STRATEGIES = ("bit_flip", "byte_noise", "truncate", "length_lie",
                  "type_swap", "splice", "duplicate")

    def __init__(self, seed: int, corpus: List[bytes],
                 coverage: bool = True):
        self.rng = random.Random(seed)
        self.pool = CoveragePool(corpus)
        self.coverage = coverage
        self.stats = {name: 0 for name in self.STRATEGIES}
        self.stats["new_signatures"] = 0

    def _pick(self) -> bytes:
        return self.rng.choice(self.pool.entries)

    def next_case(self) -> bytes:
        """Produce the next mutated input (and, under coverage
        guidance, feed interesting outputs back into the pool)."""
        name = self.rng.choice(self.STRATEGIES)
        data = getattr(self, "_" + name)(bytearray(self._pick()))
        self.stats[name] += 1
        if self.coverage and self.pool.offer(bytes(data)):
            self.stats["new_signatures"] += 1
        return bytes(data)

    # -- strategies (each takes/returns a mutable copy) ----------------------

    def _bit_flip(self, buf: bytearray) -> bytearray:
        for _ in range(self.rng.randint(1, 8)):
            if not buf:
                break
            pos = self.rng.randrange(len(buf))
            buf[pos] ^= 1 << self.rng.randrange(8)
        return buf

    def _byte_noise(self, buf: bytearray) -> bytearray:
        for _ in range(self.rng.randint(1, 4)):
            if not buf:
                break
            buf[self.rng.randrange(len(buf))] = self.rng.randrange(256)
        return buf

    def _truncate(self, buf: bytearray) -> bytearray:
        if len(buf) > 1:
            del buf[self.rng.randrange(1, len(buf)):]
        return buf

    def _length_lie(self, buf: bytearray) -> bytearray:
        """Rewrite a frame's u32 length field to a lie: off-by-a-few
        (payload/frame disagreement), huge (stall bait the max_frame
        cap must catch), or zero."""
        if len(buf) < wire.FRAME_OVERHEAD:
            return buf
        lie = self.rng.choice((
            0,
            self.rng.randint(1, 64),
            LIMITS.max_uplink_frame_bytes,
            LIMITS.max_uplink_frame_bytes + 1,
            0x7FFFFFFF,
            0xFFFFFFFF,
        ))
        buf[1:5] = lie.to_bytes(4, "big")
        return buf

    def _type_swap(self, buf: bytearray) -> bytearray:
        if buf:
            buf[0] = self.rng.choice(_SWAP_IDS)
        return buf

    def _splice(self, buf: bytearray) -> bytearray:
        other = self._pick()
        cut_a = self.rng.randint(0, len(buf))
        cut_b = self.rng.randint(0, len(other))
        return bytearray(bytes(buf[:cut_a]) + other[cut_b:])

    def _duplicate(self, buf: bytearray) -> bytearray:
        return buf + buf

    def cases(self, count: int):
        """Yield *count* mutated inputs."""
        for _ in range(count):
            yield self.next_case()
