"""Seed and crash corpora for the protocol fuzzer.

The seed corpus is every *valid* uplink message shape the client can
produce — mutation needs structured starting points or it only ever
exercises the "unknown type id" branch.  The crash corpus is a
directory of ``*.bin`` files: every input that ever produced a finding
is saved there and replayed by the test suite forever after, so a
fixed bug stays fixed.
"""

from __future__ import annotations

import os
from typing import List

import numpy as np

from ..codec import Encoding
from ..protocol import wire
from ..protocol.commands import RawCommand
from ..region import Rect

__all__ = ["seed_corpus", "display_seed_corpus", "load_crash_corpus",
           "save_crash"]


def seed_corpus(width: int = 96, height: int = 64) -> List[bytes]:
    """Framed, valid uplink messages to seed mutation from.

    Includes single frames, a multi-frame packet (framing lies need a
    second frame to corrupt into), and a CHECKED-wrapped heartbeat (the
    prelude shape, so CRC and nesting handling get mutated too).
    """
    msgs = [
        wire.InputMessage("mouse-move", 10, 12, 0.25),
        wire.InputMessage("mouse-click", width - 1, height - 1, 0.5),
        wire.InputMessage("key", 0, 0, 1.0),
        wire.ResizeMessage(width, height),
        wire.ResizeMessage(2 * width, 2 * height),
        wire.RefreshRequestMessage(Rect(0, 0, width, height)),
        wire.RefreshRequestMessage(Rect(4, 4, 8, 8)),
        wire.ZoomRequestMessage(Rect(8, 8, width // 2, height // 2)),
        wire.ZoomRequestMessage(Rect(0, 0, 0, 0)),
        wire.HeartbeatMessage(7, 1.5),
        wire.ReconnectRequestMessage(3, 41),
        # Fan-out control: a mirror subscription, a tile claim, and a
        # tile claim on the largest legal grid (mutation around the
        # cols*rows bound and the zeroed-grid rule both start from
        # valid shapes).
        wire.SubscribeMessage(wire.SUBSCRIBE_MIRROR),
        wire.SubscribeMessage(wire.SUBSCRIBE_TILE, 3, 2, 4),
        wire.SubscribeMessage(wire.SUBSCRIBE_TILE, 64, 64, 64 * 64 - 1),
        # TILE_ASSIGN is downlink-only: a client sending one is lying
        # about its role, so this seed exercises the uplink
        # direction-reject path with valid tile framing to corrupt.
        wire.TileAssignMessage(width, height,
                               Rect(0, 0, width // 2, height)),
        # QoS control: a valid client quality report (mutation around
        # the [0,1] quality and skew bounds starts from a valid shape),
        # plus VIDEO_QUALITY — downlink-only, so a client sending one
        # exercises the uplink direction-reject path with valid
        # descriptor framing to corrupt.
        wire.QosReportMessage(1, 24, 0.9, 0.8, 0.05),
        wire.VideoQualityMessage(1, 2, 2, 1, 0),
        # Fabric control frames are shard-to-shard only: a client that
        # sends one is lying about its role, so these seeds exercise
        # the uplink direction-reject path (and give mutation real
        # fabric framing to corrupt).
        wire.MigrateBeginMessage(3, 1),
        wire.MigrateCompleteMessage(3, 1),
        wire.SessionTransferMessage(3, b"\x01" + b"\x00" * 12),
        wire.ShardAdmissionReportMessage(0, 4, 4096, True),
    ]
    corpus = [wire.encode_message(m) for m in msgs]
    corpus.append(b"".join(corpus[:4]))
    corpus.append(wire.wrap_checked(
        wire.encode_message(wire.HeartbeatMessage(1, 0.5)), 9))
    return corpus


def display_seed_corpus(width: int = 16, height: int = 12) -> List[bytes]:
    """Valid-ish *display* command bytes to mutate against the decoder.

    One RAW command per payload encoding tag (the adaptive ladder's
    whole enum), plus the malformed shapes the bounded decoder must
    reject rather than crash on: an out-of-range encoding tag, a lossy
    payload truncated mid-stream, and a lossy payload whose declared
    length exceeds the bytes present.  A decoder consuming these must
    either return a command or raise ``ValueError`` — nothing else.
    """
    rng = np.random.default_rng(9)
    pixels = rng.integers(0, 256, (height, width, 4), dtype=np.uint8)
    rect = Rect(2, 3, width, height)
    corpus = [RawCommand(rect, pixels, enc).encode()
              for enc in (Encoding.NONE, Encoding.PNG,
                          Encoding.RLE, Encoding.LOSSY)]
    # Encoding tag past WireLimits.max_raw_encoding (header is type u8
    # + rect 4xu16; the tag is the next byte).
    bad_tag = bytearray(corpus[0])
    bad_tag[9] = 0xEE
    corpus.append(bytes(bad_tag))
    # Lossy payload chopped mid-stream with the length field intact.
    lossy = corpus[3]
    corpus.append(lossy[: len(lossy) - max(1, len(lossy) // 3)])
    # Lossy meta header alone, declaring planes that never arrive.
    corpus.append(lossy[:19])
    return corpus


def load_crash_corpus(path: str) -> List[bytes]:
    """All ``*.bin`` inputs under *path*, sorted by name for
    deterministic replay order.  Missing directory → empty corpus."""
    if not os.path.isdir(path):
        return []
    out = []
    for name in sorted(os.listdir(path)):
        if name.endswith(".bin"):
            with open(os.path.join(path, name), "rb") as fh:
                out.append(fh.read())
    return out


def save_crash(path: str, seed: int, index: int, data: bytes,
               label: str = "crash") -> str:
    """Persist a finding as ``<label>-s<seed>-<index>.bin`` under
    *path* (created if needed); returns the file path."""
    os.makedirs(path, exist_ok=True)
    name = f"{label}-s{seed}-{index:04d}.bin"
    full = os.path.join(path, name)
    with open(full, "wb") as fh:
        fh.write(data)
    return full
