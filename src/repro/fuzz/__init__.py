"""Deterministic, coverage-guided protocol fuzzing.

The hardening contract of :mod:`repro.protocol.wire` and
:mod:`repro.core.governor` — *no uplink byte sequence may crash, stall
or balloon the server* — is only as good as the adversary that tests
it.  This package is that adversary:

* :mod:`repro.fuzz.corpus` — seed corpus of valid uplink frames plus
  the crash-corpus directory protocol (any finding becomes a permanent
  regression test);
* :mod:`repro.fuzz.mutator` — seed-driven mutation strategies (bit
  flips, length-field lies, truncations, type-id swaps, splices of
  valid frames) with AFL-style coverage guidance: inputs that produce
  a new *outcome signature* (parsed type set, exception class, parser
  residue bucket) join the mutation pool;
* :mod:`repro.fuzz.harness` — replays mutated traffic into a live
  server+session rig while an honest co-resident session runs a real
  workload, and asserts the loop stays alive, memory stays within the
  governor's budget, and the honest session converges pixel-identical
  to an unfuzzed twin run.

Everything derives from explicit integer seeds (``random.Random``, no
wall clock), so every finding replays exactly — run it via ``make
fuzz`` or ``python -m repro.fuzz``.
"""

from .corpus import (display_seed_corpus, load_crash_corpus, save_crash,
                     seed_corpus)
from .harness import FuzzConfig, FuzzReport, replay_corpus, run_fuzz
from .mutator import CoveragePool, Mutator, outcome_signature

__all__ = [
    "seed_corpus",
    "display_seed_corpus",
    "load_crash_corpus",
    "save_crash",
    "Mutator",
    "CoveragePool",
    "outcome_signature",
    "FuzzConfig",
    "FuzzReport",
    "run_fuzz",
    "replay_corpus",
]
