"""CLI for the protocol fuzzer: ``python -m repro.fuzz``.

Runs one fuzz scenario per seed (plus a crash-corpus replay when
``--replay`` points at a directory) and exits nonzero on any finding,
so ``make fuzz`` and the CI job are the same command.
"""

from __future__ import annotations

import argparse
import sys

from .harness import FuzzConfig, replay_corpus, run_fuzz


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Deterministic protocol fuzzing against a live "
                    "server rig.")
    parser.add_argument("--seeds", type=int, nargs="+", default=[1, 2, 3],
                        help="fuzz seeds, one scenario per seed")
    parser.add_argument("--frames", type=int, default=500,
                        help="mutated inputs per scenario")
    parser.add_argument("--duration", type=float, default=2.0,
                        help="simulated scenario seconds")
    parser.add_argument("--width", type=int, default=96)
    parser.add_argument("--height", type=int, default=64)
    parser.add_argument("--crash-dir", default="tests/fuzz/corpus",
                        help="where violating inputs are saved")
    parser.add_argument("--replay", metavar="DIR", default=None,
                        help="also replay a crash-corpus directory")
    args = parser.parse_args(argv)

    failed = False
    for seed in args.seeds:
        report = run_fuzz(FuzzConfig(
            seed=seed, cases=args.frames, width=args.width,
            height=args.height, duration=args.duration,
            crash_dir=args.crash_dir))
        print(report.summary())
        failed = failed or not report.ok
    if args.replay is not None:
        for name, report in replay_corpus(args.replay):
            print(f"replay {name}: {'OK' if report.ok else 'FAIL'}")
            for failure in report.failures:
                print(f"  FAILURE: {failure}")
            failed = failed or not report.ok
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
