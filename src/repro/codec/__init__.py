"""The codec plane: batched pixel kernels + adaptive encoder policy.

Rank 15 in the layer map — above the foundation models (``video``
supplies the YV12 conversion the lossy path reuses) and *below* the
protocol layer, so command objects delegate their filter/RLE/lossy work
downward and the codec plane never learns about wire framing.  Decode
bounds are therefore parameters here; the protocol wrappers bind them
to :data:`repro.protocol.limits.LIMITS`.
"""

from .classify import ContentStats, classify
from .encodings import Encoding, lossy_decode, lossy_encode, psnr
from .policy import EncoderPolicy, EncodingChoice, LinkPosture

__all__ = [
    "ContentStats",
    "classify",
    "Encoding",
    "lossy_encode",
    "lossy_decode",
    "psnr",
    "EncoderPolicy",
    "EncodingChoice",
    "LinkPosture",
]
