"""The RAW-payload encoding family and its lossy member.

THINC's RAW command is the only one whose payload may be compressed
(Section 7); this module names the admissible encodings — the on-wire
tag is the :class:`Encoding` value — and implements the one codec that
does not already exist elsewhere in the tree: a JPEG-style lossy path
(4:2:0 chroma subsampling via the video plane's YV12 conversion, flat
quantisation, DEFLATE pack).  The lossless codecs live in
:mod:`repro.codec.kernels` and :mod:`repro.protocol.compression`.

Layering: this module sits below the protocol layer, so it cannot read
``repro.protocol.limits`` — decode bounds arrive as explicit function
parameters and the protocol-facing wrappers supply the global limits.
"""

from __future__ import annotations

import struct
import zlib
from enum import IntEnum

import numpy as np

from ..video import yuv as yuvmod

__all__ = ["Encoding", "lossy_encode", "lossy_decode", "psnr"]


class Encoding(IntEnum):
    """On-wire RAW payload encodings.

    The numeric values are the wire tag.  ``NONE``/``PNG`` deliberately
    coincide with the pre-enum boolean ``compressed`` flag (0/1), so
    every stream an old peer produced still decodes, and everything an
    adaptive server sends to the ladder's lossless floor is readable by
    an old client.
    """

    NONE = 0    # uncompressed RGBA rows
    PNG = 1     # predictive row filter + DEFLATE (lossless)
    RLE = 2     # run-length (count, pixel) pairs (lossless)
    LOSSY = 3   # 4:2:0 subsampled, quantised, DEFLATE-packed


#: Header of a LOSSY payload: true (unpadded) height, width, and the
#: flat quantiser step the encoder used.
_LOSSY_META = struct.Struct(">HHB")

#: DEFLATE effort for the lossy pack: the quantised planes are already
#: low-entropy, so a light level keeps the encoder cheap.
_LOSSY_ZLIB_LEVEL = 2


def _padded_dims(h: int, w: int):
    return h + (h & 1), w + (w & 1)


# 16-bit fixed-point BT.601 full-range coefficients (rows sum to the
# same weights yuv.rgb_to_yv12 uses in float).  The encoder runs this
# integer path because colour conversion would otherwise dominate the
# whole lossy encode; it lands within +-1 of the float conversion,
# which quantisation swallows.  The decoder keeps the shared float
# inverse from repro.video.yuv — it runs client-side, where exactness
# against the video plane's conversion matters more than server CPU.
_YR, _YG, _YB = 19595, 38470, 7471          # 0.299, 0.587, 0.114
_UR, _UG, _UB = -11058, -21710, 32768       # -0.168736, -0.331264, 0.5
_VR, _VG, _VB = 32768, -27439, -5329        # 0.5, -0.418688, -0.081312
_HALF = 1 << 15
_CHROMA_BIAS = 128 << 16


def _rgb_to_yv12_int(rgb: np.ndarray):
    """Integer 4:2:0 conversion matching :func:`repro.video.yuv.
    rgb_to_yv12` to within one code value per sample.

    Chroma is converted *after* the 2x2 subsample: the colour matrix is
    affine, so averaging RGB first is exactly averaging U/V (modulo one
    rounding step), and the chroma math runs on a quarter of the
    pixels.  Y needs no clip — its weights are all positive and sum to
    exactly 2**16."""
    r = rgb[..., 0].astype(np.int32)
    g = rgb[..., 1].astype(np.int32)
    b = rgb[..., 2].astype(np.int32)
    y8 = ((_YR * r + _YG * g + _YB * b + _HALF) >> 16).astype(np.uint8)
    def quad(p):
        # 2x2 block sum via four strided adds (markedly cheaper than a
        # two-axis reduction at these block sizes).
        return p[0::2, 0::2] + p[0::2, 1::2] + p[1::2, 0::2] \
            + p[1::2, 1::2]

    r2, g2, b2 = quad(r), quad(g), quad(b)
    bias = 4 * _CHROMA_BIAS + (2 << 16)
    u8 = ((_UR * r2 + _UG * g2 + _UB * b2 + bias) >> 18) \
        .clip(0, 255).astype(np.uint8)
    v8 = ((_VR * r2 + _VG * g2 + _VB * b2 + bias) >> 18) \
        .clip(0, 255).astype(np.uint8)
    return y8, v8, u8


def _quantise(plane: np.ndarray, qstep: int) -> np.ndarray:
    return ((plane.astype(np.uint16) + qstep // 2) // qstep).astype(np.uint8)


def _dequantise(plane: np.ndarray, qstep: int) -> np.ndarray:
    return np.minimum(plane.astype(np.uint16) * qstep, 255).astype(np.uint8)


def lossy_encode(pixels: np.ndarray, qstep: int = 8) -> bytes:
    """Encode an HxWx4 RGBA block lossily.

    Chroma is 4:2:0 subsampled through the same YV12 conversion the
    video plane uses; luma, chroma and alpha planes are flat-quantised
    by *qstep* and DEFLATE-packed together.  Alpha rides at full
    resolution so transparent UI degrades in colour, never in shape.
    """
    img = np.ascontiguousarray(pixels, dtype=np.uint8)
    if img.ndim != 3 or img.shape[2] != 4:
        raise ValueError("expected an HxWx4 RGBA array")
    if not 1 <= qstep <= 255:
        raise ValueError("qstep must be in [1, 255]")
    h, w, _ = img.shape
    ph, pw = _padded_dims(h, w)
    if (ph, pw) != (h, w):
        img = np.pad(img, ((0, ph - h), (0, pw - w), (0, 0)), mode="edge")
    y, v, u = _rgb_to_yv12_int(img[..., :3])
    body = b"".join(_quantise(p, qstep).tobytes()
                    for p in (y, v, u, img[..., 3]))
    return (_LOSSY_META.pack(h, w, qstep)
            + zlib.compress(body, _LOSSY_ZLIB_LEVEL))


def lossy_decode(data: bytes, max_pixel_bytes: int) -> np.ndarray:
    """Invert :func:`lossy_encode` (up to quantisation error).

    *max_pixel_bytes* bounds the ``h*w*4`` output allocation, and the
    DEFLATE stream may only produce exactly the plane bytes the header
    geometry implies — one extra byte proves the payload oversized and
    rejects it before the excess is ever materialised.
    """
    if len(data) < _LOSSY_META.size:
        raise ValueError("truncated lossy pixel data")
    h, w, qstep = _LOSSY_META.unpack_from(data, 0)
    if qstep < 1:
        raise ValueError("lossy quantiser step must be positive")
    if h == 0 or w == 0:
        raise ValueError("lossy payload declares an empty image")
    if h * w * 4 > max_pixel_bytes:
        raise ValueError(
            f"declared geometry {h}x{w} decodes to {h * w * 4} bytes, "
            f"limit is {max_pixel_bytes}")
    ph, pw = _padded_dims(h, w)
    luma = ph * pw
    chroma = (ph // 2) * (pw // 2)
    expected = luma + 2 * chroma + luma  # Y + V + U + alpha
    dec = zlib.decompressobj()
    raw = dec.decompress(data[_LOSSY_META.size:], expected + 1)
    if len(raw) != expected or dec.unconsumed_tail:
        raise ValueError(
            f"lossy planes decompressed to more or fewer than the "
            f"expected {expected} bytes")
    planes = np.frombuffer(raw, dtype=np.uint8)
    y = _dequantise(planes[:luma].reshape(ph, pw), qstep)
    v = _dequantise(planes[luma:luma + chroma]
                    .reshape(ph // 2, pw // 2), qstep)
    u = _dequantise(planes[luma + chroma:luma + 2 * chroma]
                    .reshape(ph // 2, pw // 2), qstep)
    alpha = _dequantise(planes[luma + 2 * chroma:].reshape(ph, pw), qstep)
    rgb = yuvmod.yv12_to_rgb(y, v, u)
    out = np.empty((ph, pw, 4), dtype=np.uint8)
    out[..., :3] = rgb
    out[..., 3] = alpha
    return np.ascontiguousarray(out[:h, :w])


def psnr(a: np.ndarray, b: np.ndarray) -> float:
    """Peak signal-to-noise ratio between two uint8 arrays, in dB."""
    diff = a.astype(np.float64) - b.astype(np.float64)
    mse = float(np.mean(diff * diff))
    if mse == 0.0:
        return float("inf")
    return 10.0 * np.log10(255.0 * 255.0 / mse)
