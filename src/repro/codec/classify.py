"""Cheap content classification for encoder selection.

The adaptive encoder needs to know, per RAW block, whether it is
looking at a solid fill, flat desktop chrome, or photographic content —
before paying for any actual encode.  Everything here is a handful of
whole-array numpy passes; blocks above a fixed pixel budget are
stride-sampled (deterministically) so classification stays O(budget)
even for full-screen updates.  Solidity is the one property checked
exactly on every pixel, because it gates a semantic rewrite (the block
is demoted to an SFILL command, not merely re-encoded).

Cost discipline: the classifier must stay an order of magnitude
cheaper than the encodes it arbitrates, or adaptivity eats its own
winnings.  The expensive statistic — palette size — is therefore
derived from the run structure instead of a full ``np.unique`` sort:
the distinct values of a sample are exactly the distinct run heads, so
when the run count is small (the only case where the palette can gate
anything) the unique pass runs over a few hundred run heads rather
than every sampled pixel.  Busy blocks report the run count itself as
a palette upper bound — by then the flat gate has already failed on
the run term, so the exact palette would never be consulted.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Tuple

import numpy as np

__all__ = ["ContentStats", "classify",
           "SAMPLE_BUDGET", "FLAT_UNIQUE_LIMIT", "FLAT_RLE_FRACTION",
           "UNIQUE_RUN_CAP", "GRADIENT_BUDGET"]

#: Most pixels the sampled statistics look at per block.
SAMPLE_BUDGET = 1 << 14

#: A block is *flat* when its sampled palette is at most this large...
FLAT_UNIQUE_LIMIT = 64

#: ...and its run structure compresses at least this much under RLE
#: (encoded size at most this fraction of the raw bytes).
FLAT_RLE_FRACTION = 1.0 / 16.0

#: Exact palette counting stops above this many runs; past it the run
#: count doubles as a (documented) palette upper bound.
UNIQUE_RUN_CAP = 1024

#: Most sampled pixels the luma-gradient statistic looks at.
GRADIENT_BUDGET = 1 << 8


class ContentStats(NamedTuple):
    """What the classifier learned about one RGBA block."""

    solid_color: Optional[Tuple[int, int, int, int]]  # set iff 1 colour
    unique_colors: int      # sampled palette size (exact when the run
                            # count is <= UNIQUE_RUN_CAP, else the run
                            # count as an upper bound)
    run_ratio: float        # runs / pixels in the sample (1.0 = noise)
    gradient: float         # mean |d luma| between sampled neighbours

    @property
    def flat(self) -> bool:
        """Desktop-chrome-like: long runs first (the cheap test), then
        a tiny palette."""
        return (self.run_ratio * 6.0 <= FLAT_RLE_FRACTION * 4.0
                and self.unique_colors <= FLAT_UNIQUE_LIMIT)


def classify(pixels: np.ndarray) -> ContentStats:
    """Classify an HxWx4 uint8 block."""
    img = np.ascontiguousarray(pixels, dtype=np.uint8)
    view = img.reshape(-1, 4).view(np.uint32).ravel()
    n = len(view)
    if n == 0:
        return ContentStats((0, 0, 0, 0), 1, 0.0, 0.0)
    if view[0] == view[-1] and bool((view == view[0]).all()):
        return ContentStats(tuple(int(c) for c in img.reshape(-1, 4)[0]),
                            1, 1.0 / n, 0.0)
    sample = view if n <= SAMPLE_BUDGET else view[::-(-n // SAMPLE_BUDGET)]
    m = len(sample)
    changes = np.flatnonzero(sample[1:] != sample[:-1])
    runs = int(len(changes)) + 1
    # The exact palette only ever gates the flat decision, and the flat
    # gate's run term has already failed for busy blocks — so count run
    # heads only while flatness is still in play (with a hard cap for
    # degenerate geometry) and report the run count as a palette upper
    # bound otherwise.
    if runs * 6.0 <= FLAT_RLE_FRACTION * 4.0 * m and runs <= UNIQUE_RUN_CAP:
        heads = np.concatenate((sample[:1], sample[changes + 1]))
        unique = int(np.unique(heads).size)
    else:
        unique = runs
    # Luma gradient along a coarse sub-sample of the scan order: green
    # dominates luma and one channel is plenty for a smooth-vs-textured
    # signal.
    grad_sample = sample[::max(1, m // GRADIENT_BUDGET)]
    green = (grad_sample >> np.uint32(8)).astype(np.int16) & 0xFF
    gradient = float(np.mean(np.abs(np.diff(green)))) if len(green) > 1 \
        else 0.0
    return ContentStats(None, unique, runs / m, gradient)
