"""Batched numpy kernels for the pixel codecs.

Every kernel here is written so Python-level iteration is at most
O(rows + columns) — never per pixel, never per run.  The protocol
layer's :mod:`repro.protocol.compression` delegates its filter and RLE
work to these functions; keeping them below the protocol layer (rank 15
in the layer map) lets the command objects use them without the codec
plane ever learning about wire formats.

The one genuinely sequential kernel is the Paeth unfilter: pixel (y, x)
depends on its left, up and up-left neighbours, so neither a row pass
nor a column pass can vectorise it.  Each *anti-diagonal* ``d = y + x``
can, though: all three dependencies of a pixel on diagonal ``d`` sit on
diagonals ``d-1`` and ``d-2``, and the channels never mix, so the whole
diagonal resolves in one fancy-indexed numpy step.  That turns the old
``height * width * channels`` interpreted-Python loop into
``height + width - 1`` vector operations over an output array padded
with a zero row and column (the padding stands in for the "missing
neighbour reads as zero" boundary rule, so no per-step masking).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "paeth_predictor",
    "paeth_filter",
    "paeth_unfilter",
    "up_filter",
    "up_unfilter",
    "batch_up_filter",
    "rle_encode",
    "rle_encoded_size",
    "rle_decode",
]


def paeth_predictor(a: np.ndarray, b: np.ndarray, c: np.ndarray
                    ) -> np.ndarray:
    """PNG's Paeth predictor, vectorised over int16 arrays."""
    p = a.astype(np.int16) + b.astype(np.int16) - c.astype(np.int16)
    pa = np.abs(p - a)
    pb = np.abs(p - b)
    pc = np.abs(p - c)
    pred = np.where((pa <= pb) & (pa <= pc), a, np.where(pb <= pc, b, c))
    return pred.astype(np.int16)


def paeth_filter(pixels: np.ndarray) -> np.ndarray:
    """Apply the Paeth filter to every row of an HxWxC image."""
    img = pixels.astype(np.uint8)
    h, w, c = img.shape
    flat = img.reshape(h, w * c)
    left = np.zeros_like(flat)
    left[:, c:] = flat[:, :-c]
    up = np.zeros_like(flat)
    up[1:, :] = flat[:-1, :]
    upleft = np.zeros_like(flat)
    upleft[1:, c:] = flat[:-1, :-c]
    pred = paeth_predictor(left, up, upleft)
    return (flat.astype(np.int16) - pred).astype(np.uint8)


def paeth_unfilter(filtered: np.ndarray, height: int, width: int,
                   channels: int) -> np.ndarray:
    """Invert the Paeth filter by anti-diagonal wavefront.

    ``out`` is padded with one zero row and one zero column so that the
    boundary neighbours (left of column 0, above row 0) read as zero
    without any masking; padded coordinates are ``(y+1, x+1)``.
    """
    f = filtered.reshape(height, width, channels).astype(np.int16)
    out = np.zeros((height + 1, width + 1, channels), dtype=np.int16)
    for d in range(height + width - 1):
        y0 = max(0, d - width + 1)
        y1 = min(height - 1, d)
        ys = np.arange(y0, y1 + 1)
        xs = d - ys
        a = out[ys + 1, xs]        # left     (y, x-1)
        b = out[ys, xs + 1]        # up       (y-1, x)
        cc = out[ys, xs]           # up-left  (y-1, x-1)
        pred = paeth_predictor(a, b, cc)
        out[ys + 1, xs + 1] = (f[ys, xs] + pred) & 0xFF
    return out[1:, 1:].astype(np.uint8)


def up_filter(pixels: np.ndarray) -> np.ndarray:
    """PNG 'Up' predictor: each row minus the row above (mod 256)."""
    img = pixels.astype(np.uint8)
    h, w, c = img.shape
    flat = img.reshape(h, w * c).astype(np.int16)
    up = np.zeros_like(flat)
    up[1:, :] = flat[:-1, :]
    return (flat - up).astype(np.uint8)


def up_unfilter(filtered: np.ndarray, height: int, width: int,
                channels: int) -> np.ndarray:
    """Invert the Up filter via a modular column cumsum (vectorised)."""
    flat = filtered.reshape(height, width * channels).astype(np.uint64)
    out = np.cumsum(flat, axis=0) % 256
    return out.astype(np.uint8).reshape(height, width, channels)


def batch_up_filter(stack: np.ndarray) -> np.ndarray:
    """Up-filter N same-shape images in one fused pass.

    *stack* is an (N, H, W, C) uint8 array; the row shift and modular
    subtraction run once over all N images (the batch-prepare path of
    the prepare plane), returning an (N, H, W*C) uint8 array of
    filtered rows ready for per-image DEFLATE.
    """
    n, h, w, c = stack.shape
    flat = stack.reshape(n, h, w * c).astype(np.int16)
    up = np.zeros_like(flat)
    up[:, 1:, :] = flat[:, :-1, :]
    return (flat - up).astype(np.uint8)


def _run_bounds(view: np.ndarray):
    """Start indices and lengths of the equal-value runs in *view*."""
    changes = np.flatnonzero(np.diff(view)) + 1
    starts = np.concatenate(([0], changes))
    lengths = np.diff(np.concatenate((starts, [len(view)])))
    return starts, lengths


def rle_encode(pixels: np.ndarray) -> bytes:
    """Run-length encode an HxWx4 image into (count u16 BE, rgba) pairs.

    Whole-array: run boundaries come from one ``diff``, oversize runs
    (> 0xFFFF) are chunked with ``repeat``-built index vectors, and the
    output is assembled as a single (chunks, 6) byte matrix.
    """
    flat = np.ascontiguousarray(pixels, dtype=np.uint8).reshape(-1, 4)
    view = flat.view(np.uint32).ravel()
    if len(view) == 0:
        return b""
    starts, lengths = _run_bounds(view)
    nchunks = (lengths + 0xFFFE) // 0xFFFF
    total = int(nchunks.sum())
    counts = np.full(total, 0xFFFF, dtype=np.uint32)
    counts[np.cumsum(nchunks) - 1] = lengths - (nchunks - 1) * 0xFFFF
    src = np.repeat(np.arange(len(starts)), nchunks)
    out = np.empty((total, 6), dtype=np.uint8)
    out[:, 0] = counts >> 8
    out[:, 1] = counts & 0xFF
    out[:, 2:6] = flat[starts[src]]
    return out.tobytes()


def rle_encoded_size(pixels: np.ndarray) -> int:
    """Exact byte size :func:`rle_encode` would produce, without
    materialising it (used by encoder-selection hot paths)."""
    view = np.ascontiguousarray(pixels, dtype=np.uint8) \
        .reshape(-1, 4).view(np.uint32).ravel()
    if len(view) == 0:
        return 0
    _, lengths = _run_bounds(view)
    return 6 * int(np.sum((lengths + 0xFFFE) // 0xFFFF))


def rle_decode(body: bytes, total_pixels: int) -> np.ndarray:
    """Invert :func:`rle_encode` into a (total_pixels, 4) uint8 array.

    Raises ValueError unless the runs cover *exactly* the declared
    pixel count with no trailing bytes.
    """
    if len(body) % 6:
        raise ValueError("truncated RLE run")
    pairs = np.frombuffer(body, dtype=np.uint8).reshape(-1, 6)
    counts = (pairs[:, 0].astype(np.int64) << 8) | pairs[:, 1]
    if int(counts.sum()) != total_pixels:
        raise ValueError("RLE data does not match declared dimensions")
    return np.repeat(pairs[:, 2:6], counts, axis=0)
