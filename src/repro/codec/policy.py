"""Content-adaptive, link-aware encoder selection for RAW blocks.

The paper compresses every RAW payload the same way (PNG-model);
this policy instead picks **per command** from the encoding ladder of
:class:`~repro.codec.encodings.Encoding`, driven by two inputs:

* the block's :func:`~repro.codec.classify.classify` statistics
  (solid / flat / photographic), and
* the link *posture* — :class:`LinkPosture`, derived from the
  governor's degraded flag, the session's send backlog, and the
  measured downlink throughput (from the packet-trace monitor)
  relative to the link's capacity.

The ladder::

    solid block               -> demote to SFILL (any posture)
    flat block                -> RLE    (skips DEFLATE entirely)
    anything else, PLENTIFUL  -> NONE   (idle LAN: bandwidth is free,
                                         server CPU is the scarce
                                         resource, so send raw rows)
    anything else, LOSSLESS   -> PNG    (lossless floor)
    anything else, DEGRADED   -> LOSSY  (4:2:0 + quantise; a later
                                         lossless refresh restores
                                         exact pixels)

Wire-vs-CPU tradeoffs are posture decisions, not content decisions:
RLE on flat chrome costs a few hundred bytes more than DEFLATE would,
but skips the entire zlib pass — the ladder keeps it in every posture
because flat blocks are a tiny fraction of wire bytes and a large
fraction of prepare CPU.

The policy knows nothing of wire formats or sessions: callers hand it
pixel arrays and throughput numbers and get back an Encoding value (and
possibly a solid colour to demote with).  The protocol/pipeline layers
above own the actual command surgery.
"""

from __future__ import annotations

from enum import IntEnum
from typing import NamedTuple, Optional, Tuple, Union

import numpy as np

from .classify import ContentStats, classify
from .encodings import Encoding

__all__ = ["LinkPosture", "EncodingChoice", "EncoderPolicy"]


class LinkPosture(IntEnum):
    """What the downlink can afford right now.

    ``LOSSLESS`` is the conservative default (compress well, stay
    exact).  ``DEGRADED`` means the link is the bottleneck — spend
    fidelity to shed bytes.  ``PLENTIFUL`` means an idle LAN-class
    link — spend bytes to shed server CPU.
    """

    LOSSLESS = 0
    DEGRADED = 1
    PLENTIFUL = 2


class EncodingChoice(NamedTuple):
    """One selection: the encoding, plus the demotion colour when the
    block turned out to be solid (callers then send SFILL instead)."""

    encoding: Encoding
    solid_color: Optional[Tuple[int, int, int, int]] = None


class EncoderPolicy:
    """Selects a RAW encoding per block from content + link budget.

    *saturation* is the fraction of link capacity at which the measured
    throughput flips the posture to degraded; *backlog_horizon* is the
    seconds of queued-but-unsent downlink drain that mean the same
    thing (a link can be the bottleneck long before its *measured*
    rate says so — the queue in front of it is the proof);
    *plentiful_headroom* and *lan_floor_bps* gate the opposite flip: a
    link at LAN capacity with almost nothing in flight can take raw
    pixels.  *lossy_qstep* is the flat quantiser handed to the lossy
    encoder; *min_lossy_pixels* keeps tiny blocks lossless (their
    absolute cost is noise and their artefacts are disproportionate).
    """

    def __init__(self, saturation: float = 0.85, lossy_qstep: int = 8,
                 min_lossy_pixels: int = 1024,
                 backlog_horizon: float = 0.1,
                 plentiful_headroom: float = 0.25,
                 lan_floor_bps: float = 50e6):
        if not 0.0 < saturation <= 1.0:
            raise ValueError("saturation must be in (0, 1]")
        self.saturation = saturation
        self.lossy_qstep = lossy_qstep
        self.min_lossy_pixels = min_lossy_pixels
        self.backlog_horizon = backlog_horizon
        self.plentiful_headroom = plentiful_headroom
        self.lan_floor_bps = lan_floor_bps
        # Selection tally by Encoding value (plus "sfill" demotions);
        # surfaced through server stats and the microperf harness.
        self.counts = {enc: 0 for enc in Encoding}
        self.demotions = 0

    # -- link posture -----------------------------------------------------

    def link_saturated(self, measured_bps: Optional[float],
                       capacity_bps: Optional[float]) -> bool:
        """Is the measured downlink rate close enough to capacity that
        the ladder should shift toward cheaper/lossy encodings?"""
        if not measured_bps or not capacity_bps:
            return False
        return measured_bps >= self.saturation * capacity_bps

    def posture_for(self, measured_bps: Optional[float],
                    capacity_bps: Optional[float],
                    backlog_bytes: int = 0) -> LinkPosture:
        """Posture of one downlink from capacity, measured rate and the
        bytes already queued in front of it."""
        if capacity_bps:
            if backlog_bytes * 8.0 > self.backlog_horizon * capacity_bps:
                return LinkPosture.DEGRADED
        if self.link_saturated(measured_bps, capacity_bps):
            return LinkPosture.DEGRADED
        if (capacity_bps and capacity_bps >= self.lan_floor_bps
                and (measured_bps or 0.0)
                <= self.plentiful_headroom * capacity_bps
                and backlog_bytes * 8.0
                <= self.plentiful_headroom * capacity_bps
                * self.backlog_horizon):
            return LinkPosture.PLENTIFUL
        return LinkPosture.LOSSLESS

    # -- selection --------------------------------------------------------

    def select(self, pixels: np.ndarray,
               posture: Union[LinkPosture, bool] = LinkPosture.LOSSLESS,
               stats: Optional[ContentStats] = None) -> EncodingChoice:
        """Pick an encoding for one RGBA block under *posture* (a bool
        is accepted as degraded-or-not, for callers that only track the
        saturation flip)."""
        if posture is True:
            posture = LinkPosture.DEGRADED
        elif posture is False:
            posture = LinkPosture.LOSSLESS
        if stats is None:
            stats = classify(pixels)
        if stats.solid_color is not None:
            self.demotions += 1
            return EncodingChoice(Encoding.NONE, stats.solid_color)
        pixel_count = pixels.shape[0] * pixels.shape[1]
        if stats.flat:
            choice = Encoding.RLE
        elif posture is LinkPosture.PLENTIFUL \
                and pixel_count >= self.min_lossy_pixels:
            choice = Encoding.NONE
        elif posture is LinkPosture.DEGRADED \
                and pixel_count >= self.min_lossy_pixels:
            choice = Encoding.LOSSY
        else:
            choice = Encoding.PNG
        self.counts[choice] += 1
        return EncodingChoice(choice)
