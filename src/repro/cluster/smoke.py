"""End-to-end fabric smoke: shards, relay, live migration, fidelity.

Runnable rehearsal of the whole cluster story in one deterministic
simulation: N shards behind a relay, M resilient clients dialling the
relay exactly as they would a single server, every shard's display
driven by the *same* scripted workload (mirrored content is what makes
a migrated session comparable to an uninterrupted twin), K live
migrations fired mid-workload, and the golden assertion at the end —
every client framebuffer pixel-identical to its owning shard's screen.

This is the CI `cluster-smoke` job (run under ``THINC_SANITIZE=1``)::

    PYTHONPATH=src THINC_SANITIZE=1 python -m repro.cluster.smoke \
        --shards 2 --sessions 8 --migrations 1

Exit status 0 means every invariant held; any divergence raises.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

import numpy as np

from ..core.resilience import ResilienceConfig, ResilientClient
from ..display import WindowServer
from ..net import Connection, EventLoop
from ..net.link import LinkParams
from ..region import Rect
from .coordinator import ShardCoordinator

__all__ = ["run_smoke", "main"]

#: Client access link: a typical LAN desktop path.
ACCESS_LINK = LinkParams("smoke access", bandwidth_bps=100e6, rtt=0.0002)

#: Resilience tuning matched to the chaos/test rigs: fast liveness so a
#: severed splice turns into a redial within the simulated run.
SMOKE_CONFIG = ResilienceConfig(
    heartbeat_interval=0.1, liveness_timeout=0.35, check_interval=0.05,
    backoff_base=0.05, backoff_jitter=0.2, detach_window=5.0)


def scripted_workload(loop, ws, end: float = 1.5, step: float = 0.05,
                      seed: int = 7):
    """Deterministic mixed draw schedule over [0, end), every *step* s.

    Same seed => same draws at the same times on every shard, so all
    shard screens stay mirrored and a migrated session has an exact
    uninterrupted twin to be compared against.
    """
    rng = np.random.default_rng(seed)
    W, H = ws.screen.bounds.width, ws.screen.bounds.height
    white = (255, 255, 255, 255)
    ws.fill_rect(ws.screen, ws.screen.bounds, white)

    def run(op: int, x: int, y: int, w: int, h: int, color, img) -> None:
        if op == 0:
            ws.fill_rect(ws.screen, Rect(x, y, w, h), color)
        elif op == 1:
            ws.put_image(ws.screen, Rect(x, y, w, h), img)
        elif op == 2:
            ws.draw_text(ws.screen, x, y, "thinc", color)
        else:
            ws.copy_area(ws.screen, ws.screen, Rect(0, 0, 24, 24), x, y)

    t = step
    while t < end:
        op = int(rng.integers(0, 4))
        x, y = int(rng.integers(0, W - 16)), int(rng.integers(0, H - 16))
        w, h = int(rng.integers(4, 16)), int(rng.integers(4, 16))
        color = tuple(int(v) for v in rng.integers(0, 256, 3)) + (255,)
        img = rng.integers(0, 256, (h, w, 4), dtype=np.uint8) \
            if op == 1 else None
        loop.schedule_at(
            t, lambda op=op, x=x, y=y, w=w, h=h, c=color, i=img:
            run(op, x, y, w, h, c, i))
        t += step


def run_smoke(shards: int = 2, sessions: int = 8, migrations: int = 1,
              width: int = 96, height: int = 64, end: float = 1.5,
              settle: float = 9.0, verbose: bool = True) -> dict:
    """Run the fabric smoke; returns the coordinator's final stats.

    Raises AssertionError (or whatever invariant tripped) on failure.
    """
    loop = EventLoop()
    coord = ShardCoordinator(loop, shards, width, height,
                             resilience=SMOKE_CONFIG)
    screens: List[WindowServer] = []
    for server in coord.shards:
        ws = WindowServer(width, height, driver=server.driver,
                          clock=loop.clock)
        scripted_workload(loop, ws, end=end)
        screens.append(ws)

    def dial() -> Connection:
        conn = Connection(loop, ACCESS_LINK)
        coord.relay.accept(conn)
        return conn

    clients: List[ResilientClient] = []
    for i in range(sessions):
        rc = ResilientClient(loop, dial, config=SMOKE_CONFIG, seed=i)
        rc.start()
        clients.append(rc)

    # Let every session attach and the workload get rolling, then fire
    # the migrations mid-stream, round-robin across attached clients.
    loop.run_until(min(1.0, end))
    moved = []
    for i in range(migrations):
        rc = clients[i % len(clients)]
        token = rc.token
        assert token, f"client {i} never attached"
        source = coord.route_token(token)
        target = (source + 1) % shards
        if source == target:
            continue  # single-shard run: nowhere to migrate to
        coord.migrate(token, target)
        moved.append((token, source, target))

    loop.run_until(end + settle)

    # The golden assertion, per client, against its *current* shard.
    for i, rc in enumerate(clients):
        shard = coord.route_token(rc.token)
        assert shard is not None, f"client {i} lost its route"
        fb = rc.client.fb
        assert fb is not None, f"client {i} never got a framebuffer"
        screen = screens[shard].screen.fb
        diff = int(np.sum(np.any(fb.data != screen.data, axis=-1)))
        assert fb.same_as(screen), (
            f"client {i} (token {rc.token}, shard {shard}) diverged: "
            f"{diff} pixels differ")

    for token, source, target in moved:
        assert coord.route_token(token) == target
    want = {"MigrateBeginMessage", "SessionTransferMessage",
            "MigrateCompleteMessage"}
    seen = {type(m).__name__ for m in coord.fabric_log}
    if moved:
        assert want <= seen, f"fabric log incomplete: {seen}"
    reports = coord.admission_reports()
    assert len(reports) == shards

    stats = coord.stats()
    if verbose:
        per = [len(s.sessions) for s in coord.shards]
        print(f"cluster-smoke: {shards} shards x {sessions} sessions, "
              f"{len(moved)} migration(s) {moved}")
        print(f"  sessions per shard: {per}")
        print(f"  relay: {stats['relay']}")
        print(f"  shared cache: {stats['shared_cache']}")
        print(f"  transfer bytes: {stats['transfer_bytes']}")
        print("  all client framebuffers pixel-identical to their "
              "shard screens")
    return stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cluster.smoke",
        description="End-to-end shard-fabric smoke test")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--sessions", type=int, default=8)
    parser.add_argument("--migrations", type=int, default=1)
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    run_smoke(shards=args.shards, sessions=args.sessions,
              migrations=args.migrations, verbose=not args.quiet)
    return 0


if __name__ == "__main__":
    sys.exit(main())
