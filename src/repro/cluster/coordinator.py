"""The shard coordinator: placement, routing, live migration.

A :class:`ShardCoordinator` owns N :class:`~repro.core.server.
THINCServer` shards on one shared simulation clock.  Each shard is a
complete THINC server — its own driver, prepare plane, governor and
resilience plane — with two fabric couplings: a disjoint token
namespace (shard *i* issues tokens ``i+1, i+1+N, ...``, so a token
names its minting shard and never collides) and the cluster-wide
:class:`~repro.cluster.cache.SharedPrepareCache` injected into every
prepare plane.

Placement is consistent hashing with admission overflow: a fresh dial
walks the ring's preference order and lands on the first shard whose
governor would admit it (:meth:`place`); a full fabric yields None and
the relay answers with the standard typed denial.  Routing for
established sessions is token-based: minting-shard lookup by guard
table, overridden by the explicit ``routes`` map once a migration has
moved the token away from its minting shard.

**Live migration** (:meth:`migrate`) is freeze → transfer → thaw →
resync, built entirely from parts that already exist: the relay severs
the client's splice (so recovery is the resilience plane's ordinary
detach/redial path, bounded by the same detach window), the session
freezes to its :class:`~repro.core.session_unit.FrozenSession`
surface, crosses the fabric inside a real ``SESSION_TRANSFER`` wire
frame (encoded and re-parsed — the codec is on the hot path, not
decoration), thaws on the target via ``thaw_session``/``adopt``, and
the client's redial replays or snapshots exactly as it would after a
network fault.  Control-plane messages (MIGRATE_BEGIN/COMPLETE,
SHARD_ADMISSION) take the same honest round-trip through the codec
into :attr:`fabric_log`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from ..core.resilience import ResilienceConfig
from ..core.server import THINCServer
from ..core.session_unit import FrozenSession, SessionUnit
from ..net.link import LinkParams
from ..protocol import wire
from ..protocol.limits import LIMITS
from ..protocol.spec import FABRIC_ACCEPTS
from .cache import SharedPrepareCache
from .hashring import HashRing
from .relay import FABRIC_LAN, Relay

__all__ = ["ShardCoordinator"]


class ShardCoordinator:
    """Owner of the shard fleet, the ring, the routes and the relay."""

    def __init__(self, loop, num_shards: int, width: int, height: int,
                 resilience: Optional[ResilienceConfig] = None,
                 shared_cache: Optional[SharedPrepareCache] = None,
                 ring_replicas: int = 64,
                 fabric_link: LinkParams = FABRIC_LAN,
                 relay_buffer_limit: int = 1 << 20,
                 **server_kw):
        if num_shards <= 0:
            raise ValueError("need at least one shard")
        self.loop = loop
        base = resilience or ResilienceConfig()
        self.shards: List[THINCServer] = []
        for i in range(num_shards):
            cfg = replace(base, token_start=i + 1, token_stride=num_shards)
            self.shards.append(THINCServer(loop, width, height,
                                           resilience=cfg, **server_kw))
        self.shared_cache = shared_cache or SharedPrepareCache()
        for server in self.shards:
            server.plane.shared_cache = self.shared_cache
        self.ring = HashRing(range(num_shards), replicas=ring_replicas)
        #: Explicit token routes, needed once a migration moves a token
        #: off its minting shard; minting-shard guard lookup is the
        #: fallback for everything else.
        self.routes: Dict[int, int] = {}
        self.relay = Relay(self, fabric_link=fabric_link,
                           buffer_limit=relay_buffer_limit)
        #: Decoded control-plane traffic, in send order (every entry
        #: has been through encode_message + the fabric parser).
        self.fabric_log: List[object] = []
        #: The fabric's receive parser: like every other link in the
        #: system, shard-to-shard traffic parses under a spec-derived
        #: allowed-id set (THL201) — a display or control frame that
        #: strays onto the fabric dies at the frame header.
        self._fabric_parser = wire.StreamParser(
            max_frame=LIMITS.max_frame_bytes, allowed=FABRIC_ACCEPTS)
        self.migrations: List[Dict[str, float]] = []
        self.transfer_bytes = 0

    # -- fabric wire plumbing ------------------------------------------------

    def _fabric_send(self, msg):
        """Round-trip a fabric message through the real codec.

        The simulation keeps shards in one process, so the "network"
        here is the encoder and parser themselves: every control
        message and every session transfer must survive its own wire
        format — under the fabric's allowed-id set — which is what
        keeps the spec honest.
        """
        framed = wire.encode_message(msg)
        self.transfer_bytes += len(framed)
        (decoded,) = self._fabric_parser.feed(framed)
        self.fabric_log.append(decoded)
        return decoded

    # -- placement and routing -----------------------------------------------

    @property
    def retry_after(self) -> float:
        return self.shards[0].governor.server_budget.retry_after

    def place(self, key: str) -> Optional[int]:
        """Shard for a fresh attach: ring order with admission overflow.

        Walks the consistent-hash preference order for *key* and
        returns the first shard whose governor would admit a session;
        None when the whole fabric is refusing (the relay then sends
        the standard typed denial).
        """
        for shard in self.ring.preference(str(key)):
            if self.shards[shard].governor.check_admission() is None:
                return shard
        return None

    def route_token(self, token: int) -> Optional[int]:
        """Shard currently owning *token*, or None if nobody does."""
        shard = self.routes.get(token)
        if shard is not None:
            return shard
        for i, server in enumerate(self.shards):
            if server.resilience is not None and \
                    token in server.resilience.guards:
                return i
        return None

    def note_route(self, token: int, shard: int) -> None:
        self.routes[token] = shard

    # -- live migration ------------------------------------------------------

    def migrate(self, token: int, target: int) -> SessionUnit:
        """Move session *token* to shard *target*, live.

        Freeze → transfer (through the real SESSION_TRANSFER wire
        format) → thaw → adopt; the client is severed at the relay and
        recovers through the ordinary resilience redial, which the
        updated routing table now sends to *target*.  Returns the
        thawed successor unit.
        """
        if not 0 <= target < len(self.shards):
            raise ValueError(f"no such shard: {target}")
        source = self.route_token(token)
        if source is None:
            raise KeyError(f"unknown session token {token}")
        if source == target:
            raise ValueError(f"token {token} is already on shard {target}")
        src_server = self.shards[source]
        guard = src_server.resilience.guards.get(token)
        if guard is None:
            raise KeyError(f"token {token} has no guard on shard {source}")
        session = guard.session
        began = self.loop.now
        self._fabric_send(wire.MigrateBeginMessage(token, target))
        # Cut the client's path first so no uplink byte lands mid-freeze;
        # from here the clock on the client's bounded absence is running.
        self.relay.sever(token)
        frozen = session.freeze()
        transfer = self._fabric_send(
            wire.SessionTransferMessage(token, frozen.to_bytes()))
        src_server.resilience.drop_guard(session)
        src_server.detach_client(session)
        successor = self.shards[target].thaw_session(
            FrozenSession.from_bytes(transfer.state))
        # Prepared commands still in flight against the frozen husk
        # belong to the successor now.
        session.forward_to(successor)
        self.routes[token] = target
        self._fabric_send(wire.MigrateCompleteMessage(token, target))
        self.migrations.append({"token": token, "source": source,
                                "target": target, "at": began})
        return successor

    # -- admission reporting -------------------------------------------------

    def admission_reports(self) -> List[wire.ShardAdmissionReportMessage]:
        """Every shard's governor posture, as decoded fabric messages.

        This is the upward half of the governance plane: the
        coordinator's placement overflow consumes exactly what these
        reports carry (session count, buffered bytes, admitting bit).
        """
        reports = []
        for i, server in enumerate(self.shards):
            queue_bytes = sum(s.buffer.pending_bytes()
                              for s in server.sessions)
            reports.append(self._fabric_send(
                wire.ShardAdmissionReportMessage(
                    shard=i, sessions=len(server.sessions),
                    queue_bytes=queue_bytes,
                    admitting=server.governor.check_admission() is None)))
        return reports

    # -- diagnostics ---------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Fabric-wide headline counters plus per-shard summaries."""
        return {
            "shards": len(self.shards),
            "sessions": sum(len(s.sessions) for s in self.shards),
            "migrations": len(self.migrations),
            "transfer_bytes": self.transfer_bytes,
            "routes": len(self.routes),
            "shared_cache": self.shared_cache.stats(),
            "relay": dict(self.relay.stats),
            "per_shard": [dict(server.stats) for server in self.shards],
        }

    def pending(self) -> bool:
        return any(server.pending() for server in self.shards)
