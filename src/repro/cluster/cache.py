"""Cross-shard sharing of prepared (scaled + compressed) commands.

Each shard's :class:`~repro.core.pipeline.PreparePlane` caches by
``(prep id, scale key)``, where the prep id is a counter local to that
plane — meaningless to a peer.  This module adds the fabric-wide level:
a :class:`SharedPrepareCache` keyed by command *content* (CRC-32 of the
command's wire encoding) plus the same scale key, injected into every
shard's ``plane.shared_cache`` hook.  When two clients with the same
viewport watch the same content from different shards, the second
shard adopts the first one's compressed output instead of burning its
own (simulated) CPU on identical PNG-model work — the PR 1 cache
economics, lifted one level up.

Validity rests on two facts: the wire encoding fully determines a
command's pixels and geometry (it is, literally, what the client will
see), and the scale key fully determines the prepare transform, so
equal (content, scale) pairs produce byte-identical prepared entries.
The RAW payload encoding tag additionally joins the key outright —
the tag is already inside the CRC'd wire bytes, but keeping it
explicit guarantees that an entry prepared under one adaptive
encoding can never satisfy a lookup for another, CRC collisions or
future wire-format drift notwithstanding.
Entries carry their original ``ready_at`` stamps; all shards share one
simulation clock, so those stamps stay meaningful across planes, and
consumers re-clamp against their own sessions' pipe tails anyway.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from typing import Dict, Optional, Tuple

__all__ = ["SharedPrepareCache"]


def _content_id(command) -> int:
    """CRC-32 of the command's wire encoding, stamped once.

    Stable across shards and runs (unlike plane-local prep ids), and
    cached on the command so fan-outs hash once.  The encode cost is
    amortised: commands memoise their encoded payloads, and a cache hit
    saves the far larger prepare cost.
    """
    cid = getattr(command, "_content_crc", None)
    if cid is None:
        cid = command._content_crc = zlib.crc32(command.encode())
    return cid


def _key(command, scale_key) -> Tuple:
    """Fabric cache key: (content CRC, RAW encoding tag, scale key)."""
    enc = getattr(command, "encoding", None)
    return (_content_id(command), -1 if enc is None else int(enc), scale_key)


class SharedPrepareCache:
    """LRU cache of prepared-command entries, shared by shard planes.

    Duck-typed to the ``PreparePlane.shared_cache`` hook:
    ``get(command, scale_key)`` returns a prepared entry or None;
    ``put(command, scale_key, entry)`` publishes one.
    """

    def __init__(self, max_entries: int = 256):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, command, scale_key) -> Optional[object]:
        key = _key(command, scale_key)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, command, scale_key, entry) -> None:
        self._entries[_key(command, scale_key)] = entry
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "entries": len(self._entries)}
