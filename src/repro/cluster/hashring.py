"""Deterministic consistent-hash ring for session placement.

The coordinator places sessions on shards by hashing a stable key (the
dial identity, later the session token) onto a ring of virtual nodes —
the classic construction: each shard contributes ``replicas`` points,
a key lands on the first point at or clockwise past its own hash, and
adding or removing one shard only moves the keys that hashed into its
arcs.  Hashing is ``zlib.crc32`` over ASCII labels (the same primitive
the repo's seeded RNGs use) so placement is identical across runs,
processes and platforms — a requirement for the deterministic
simulation harness, not an optimisation.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from typing import Iterable, Iterator, List, Tuple

__all__ = ["HashRing"]


def _point(label: str) -> int:
    """Ring coordinate for a label: CRC-32 plus a murmur-style finalizer.

    Raw CRC-32 of near-identical labels ("0#1", "0#2", ...) clusters —
    consecutive dial keys would pile onto one shard.  The avalanche
    mixer decorrelates them while staying exactly reproducible (pure
    32-bit integer arithmetic, no interpreter hash randomisation).
    """
    h = zlib.crc32(label.encode("utf-8"))
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & 0xFFFFFFFF
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & 0xFFFFFFFF
    return h ^ (h >> 16)


class HashRing:
    """A consistent-hash ring over hashable node identities."""

    def __init__(self, nodes: Iterable = (), replicas: int = 64):
        if replicas <= 0:
            raise ValueError("replicas must be positive")
        self.replicas = replicas
        self._nodes: set = set()
        # Parallel sorted arrays: virtual-point hashes and their owning
        # nodes (kept separate so bisect never compares node objects).
        self._hashes: List[int] = []
        self._owners: List[object] = []
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> frozenset:
        return frozenset(self._nodes)

    def _rebuild(self) -> None:
        points: List[Tuple[int, str, object]] = []
        for node in self._nodes:
            for i in range(self.replicas):
                # repr-based tie-break keeps identical rings identical
                # regardless of insertion order.
                points.append((_point(f"{node!r}#{i}"), repr(node), node))
        points.sort(key=lambda p: (p[0], p[1]))
        self._hashes = [p[0] for p in points]
        self._owners = [p[2] for p in points]

    def add(self, node) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        self._rebuild()

    def remove(self, node) -> None:
        if node not in self._nodes:
            raise KeyError(node)
        self._nodes.discard(node)
        self._rebuild()

    def _start_index(self, key: str) -> int:
        idx = bisect_right(self._hashes, _point(f"key:{key}"))
        return 0 if idx == len(self._hashes) else idx  # wrap at 12 o'clock

    def lookup(self, key: str):
        """The node owning *key* (first point clockwise of its hash)."""
        if not self._hashes:
            raise LookupError("hash ring is empty")
        return self._owners[self._start_index(key)]

    def preference(self, key: str) -> Iterator:
        """Distinct nodes in ring order starting at *key*'s owner.

        The overflow-routing walk: the first yielded node is
        ``lookup(key)``; each subsequent one is the next distinct node
        clockwise, so a full iteration visits every node exactly once
        in a key-dependent but deterministic order.
        """
        if not self._hashes:
            return
        idx = self._start_index(key)
        seen = set()
        for offset in range(len(self._owners)):
            node = self._owners[(idx + offset) % len(self._owners)]
            if node not in seen:
                seen.add(node)
                yield node
