"""Sharded server fabric: placement, relay routing, live migration.

One THINC server scales to one machine; this package scales the
*deployment* without touching the client: a :class:`ShardCoordinator`
owns N independent shards behind a :class:`Relay` that speaks the
ordinary wire protocol, places sessions by consistent hashing with
admission overflow, shares the prepared-command cache across shards,
and migrates live sessions between them by freezing their serializable
surface (:mod:`repro.core.session_unit`) and shipping it across the
fabric in a ``SESSION_TRANSFER`` frame.  Recovery from a migration is
the resilience plane's existing detach/reconnect machinery — clients
cannot tell a migration from a network blip.
"""

from .cache import SharedPrepareCache
from .coordinator import ShardCoordinator
from .hashring import HashRing
from .relay import FABRIC_LAN, Relay

__all__ = [
    "HashRing",
    "SharedPrepareCache",
    "ShardCoordinator",
    "Relay",
    "FABRIC_LAN",
]
