"""The relay edge: one dial target in front of many shards.

Clients speak the *unchanged* THINC wire protocol to the relay — same
prelude, same CHECKED framing, same RC4 — and never learn the fabric
exists.  The relay reads exactly one plaintext frame off a fresh dial
(the reconnect request), asks the coordinator which shard owns the
token (or places a fresh attach), dials a backhaul to that shard, hands
the backhaul to the shard's resilience plane, and from then on is a
pair of bounded byte pumps: client→shard and shard→client.  On the way
back it peeks exactly one frame (the accept/denied answer) to learn the
token the shard assigned, then goes fully opaque — later bytes may be
encrypted under a key the relay never sees, so it *must not* parse
them.

Migration uses :meth:`Relay.sever`: cutting both legs of a token's
splice makes the client's liveness detector fire and redial, and the
coordinator's updated routing table sends the redial to the session's
new home — the relay re-uses the resilience plane's detach/reconnect
machinery instead of inventing a second recovery path, so the
migration outage is bounded by the same detach-window budget as any
network fault.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

from ..core.resilience import _checked_prelude, _decode_prelude, \
    _PreludeReader
from ..net.link import LinkParams
from ..net.transport import Connection
from ..protocol import wire

__all__ = ["Relay", "FABRIC_LAN"]

#: Default shard-backhaul path: a datacenter hop, far faster than any
#: client access link so the relay tier never becomes the bottleneck.
FABRIC_LAN = LinkParams("shard fabric", bandwidth_bps=1e9, rtt=0.0001)

#: Retry cadence for a pump blocked on a full destination window.
_PUMP_RETRY = 0.001


class _Pump:
    """A bounded one-direction byte pump into a transport endpoint.

    Respects the destination's ``writable_bytes`` window (splitting
    chunks arbitrarily — this is a byte stream, not a frame relay) and
    retries on a timer while backlogged.  A backlog past *limit* means
    the destination stopped draining for good; the pump declares
    overflow and the splice is severed rather than buffering without
    bound — the client then recovers through the normal redial path.
    """

    def __init__(self, loop, dst, limit: int,
                 on_overflow: Callable[[], None]):
        self.loop = loop
        self.dst = dst
        self.limit = limit
        self.on_overflow = on_overflow
        self.buf: Deque[bytes] = deque()
        self.buffered = 0
        self.moved = 0
        self.closed = False
        self._scheduled = False

    def push(self, chunk: bytes) -> None:
        if self.closed or not chunk:
            return
        self.buf.append(chunk)
        self.buffered += len(chunk)
        if self.buffered > self.limit:
            self.close()
            self.on_overflow()
            return
        self._drain()

    def _drain(self) -> None:
        if self.closed:
            return
        while self.buf:
            room = self.dst.writable_bytes()
            if room <= 0:
                break
            head = self.buf.popleft()
            if len(head) > room:
                self.dst.write(head[:room])
                self.buf.appendleft(head[room:])
                self.buffered -= room
                self.moved += room
                break
            self.dst.write(head)
            self.buffered -= len(head)
            self.moved += len(head)
        if self.buf and not self._scheduled:
            self._scheduled = True
            self.loop.schedule(_PUMP_RETRY, self._tick)

    def _tick(self) -> None:
        self._scheduled = False
        self._drain()

    def close(self) -> None:
        self.closed = True
        self.buf.clear()
        self.buffered = 0


class _Splice:
    """One client↔shard byte path through the relay."""

    def __init__(self, relay: "Relay", client_conn: Connection,
                 backhaul: Connection, shard: int):
        self.relay = relay
        self.client_conn = client_conn
        self.backhaul = backhaul
        self.shard = shard
        self.token = 0  # learned from the shard's accept answer
        self.up = _Pump(relay.loop, backhaul.up, relay.buffer_limit,
                        self._overflow)
        self.down = _Pump(relay.loop, client_conn.down,
                          relay.buffer_limit, self._overflow)
        self._answer_seen = False
        self._down_reader = _PreludeReader()
        client_conn.up.connect(self._on_client_bytes)
        backhaul.down.connect(self._on_shard_bytes)

    def _overflow(self) -> None:
        self.relay.stats["overflows"] += 1
        self.close()

    def _on_client_bytes(self, chunk: bytes) -> None:
        self.up.push(chunk)
        self.relay.stats["bytes_up"] += len(chunk)

    def _on_shard_bytes(self, chunk: bytes) -> None:
        self.relay.stats["bytes_down"] += len(chunk)
        if self._answer_seen:
            self.down.push(chunk)
            return
        # Peek exactly one plaintext frame — the shard's answer — to
        # learn the session token; everything after it may be
        # encrypted, so the relay never parses past this point.
        try:
            frame = self._down_reader.feed(chunk)
            if frame is None:
                return
            msg = _decode_prelude(frame)
        except (ValueError, KeyError):
            self.close()
            return
        self._answer_seen = True
        if isinstance(msg, wire.ReconnectAcceptMessage):
            self.token = msg.token
            self.relay.register(self)
        self.down.push(frame + self._down_reader.remainder())

    def close(self) -> None:
        self.up.close()
        self.down.close()
        self.client_conn.up.disconnect()
        self.backhaul.down.disconnect()
        self.client_conn.close()
        self.backhaul.close()


class Relay:
    """The dial target clients use; routes each dial to its shard.

    ``accept`` is signature-compatible with
    ``ResiliencePlane.accept`` — a resilient client (or
    :func:`repro.net.faults.dial_factory`) pointed at a relay cannot
    tell it apart from a single server.
    """

    def __init__(self, coordinator,
                 shard_dial: Optional[Callable[[int], Connection]] = None,
                 fabric_link: LinkParams = FABRIC_LAN,
                 buffer_limit: int = 1 << 20):
        self.coordinator = coordinator
        self.loop = coordinator.loop
        self.buffer_limit = buffer_limit
        self._shard_dial = shard_dial or (
            lambda shard: Connection(self.loop, fabric_link))
        self._dials = 0
        #: token -> live splice, for migration severing.
        self.splices: Dict[int, _Splice] = {}
        self.stats = {"accepts": 0, "denied": 0, "severed": 0,
                      "routed_fresh": 0, "routed_resumed": 0,
                      "overflows": 0, "bytes_up": 0, "bytes_down": 0}

    # -- the dial path -------------------------------------------------------

    def accept(self, connection: Connection, viewport=None) -> None:
        """Take ownership of a freshly dialled client connection."""
        self._dials += 1
        self.stats["accepts"] += 1
        dial_no = self._dials
        reader = _PreludeReader()

        def on_data(chunk: bytes) -> None:
            try:
                frame = reader.feed(chunk)
                if frame is None:
                    return
                msg = _decode_prelude(frame)
                if not isinstance(msg, wire.ReconnectRequestMessage):
                    raise wire.ProtocolError(
                        f"expected reconnect request, got {msg!r}")
            except (ValueError, KeyError):
                connection.up.disconnect()
                return
            self._route(connection, viewport, dial_no, msg,
                        frame + reader.remainder())

        connection.up.connect(on_data)

    def _route(self, connection: Connection, viewport, dial_no: int,
               req: wire.ReconnectRequestMessage, prelude: bytes) -> None:
        shard = self.coordinator.route_token(req.token) if req.token \
            else None
        if shard is not None:
            self.stats["routed_resumed"] += 1
        else:
            # Fresh attach — or a token no shard knows any more, which
            # the single-server plane also treats as a fresh attach.
            shard = self.coordinator.place(f"dial-{dial_no}")
            if shard is not None:
                self.stats["routed_fresh"] += 1
        if shard is None:
            # No admitting shard anywhere: push back with the same
            # typed denial a single overloaded server uses.
            self.stats["denied"] += 1
            data = _checked_prelude(wire.ReconnectDeniedMessage(
                self.coordinator.retry_after))
            connection.up.disconnect()
            if connection.down.writable_bytes() >= len(data):
                connection.down.write(data)
            return
        backhaul = self._shard_dial(shard)
        server = self.coordinator.shards[shard]
        server.resilience.accept(backhaul, viewport)
        connection.up.disconnect()  # the splice takes over the stream
        splice = _Splice(self, connection, backhaul, shard)
        # Replay the prelude (plus any bytes that rode the same
        # segment) into the shard exactly as received.
        splice.up.push(prelude)

    # -- routing bookkeeping -------------------------------------------------

    def register(self, splice: _Splice) -> None:
        """A shard accepted a session on *splice*; index it by token."""
        old = self.splices.get(splice.token)
        if old is not None and old is not splice:
            old.close()  # a stale path for the same session
        self.splices[splice.token] = splice
        self.coordinator.note_route(splice.token, splice.shard)

    def sever(self, token: int) -> None:
        """Cut a token's splice (both legs) — the migration trigger.

        The client's liveness detector fires, it backs off and redials;
        by then the coordinator routes the token to its new shard.
        """
        splice = self.splices.pop(token, None)
        if splice is not None:
            self.stats["severed"] += 1
            splice.close()
