"""Protocol trace capture and replay.

The paper measures closed systems from network traces; this module
gives the reproduction the same affordance for THINC itself: a
:class:`TraceRecorder` taps a connection direction and writes every
chunk with its timestamp, and a :class:`TraceReplayer` feeds a recorded
session back into any consumer (a client, an analyser) on the original
timeline or as fast as possible.

Trace file layout: a 16-byte magic/version header, then records of
``[f64 timestamp][u32 length][payload]`` (big-endian).
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass
from typing import BinaryIO, Callable, List, Union

__all__ = ["TraceRecorder", "TraceReplayer", "read_trace", "TraceRecord",
           "summarize_trace"]

_MAGIC = b"THINCTRACE\x00\x01\x00\x00\x00\x00"
_RECORD = struct.Struct(">dI")


@dataclass(frozen=True)
class TraceRecord:
    time: float
    data: bytes


class TraceRecorder:
    """Captures one direction of a connection to a trace stream.

    Interpose it on an endpoint::

        recorder = TraceRecorder(open(path, "wb"), clock)
        connection.down.connect(recorder.tee(client._on_data))
    """

    def __init__(self, sink: BinaryIO, clock):
        self.sink = sink
        self.clock = clock
        self.records_written = 0
        self.bytes_written = 0
        sink.write(_MAGIC)

    def record(self, chunk: bytes) -> None:
        """Append one timestamped chunk to the trace."""
        self.sink.write(_RECORD.pack(self.clock.now, len(chunk)))
        self.sink.write(chunk)
        self.records_written += 1
        self.bytes_written += len(chunk)

    def tee(self, receiver: Callable[[bytes], None]
            ) -> Callable[[bytes], None]:
        """A receiver that records each chunk and passes it through."""

        def _tee(chunk: bytes) -> None:
            self.record(chunk)
            receiver(chunk)

        return _tee


def read_trace(source: Union[BinaryIO, bytes]) -> List[TraceRecord]:
    """Parse a whole trace; raises ValueError on corruption."""
    stream = io.BytesIO(source) if isinstance(source, bytes) else source
    magic = stream.read(len(_MAGIC))
    if magic != _MAGIC:
        raise ValueError("not a THINC trace (bad magic)")
    out: List[TraceRecord] = []
    while True:
        header = stream.read(_RECORD.size)
        if not header:
            break
        if len(header) < _RECORD.size:
            raise ValueError("truncated trace record header")
        time, length = _RECORD.unpack(header)
        data = stream.read(length)
        if len(data) < length:
            raise ValueError("truncated trace record payload")
        out.append(TraceRecord(time, data))
    return out


class TraceReplayer:
    """Feeds a recorded session into a consumer.

    ``replay_into`` delivers everything immediately (offline analysis);
    ``schedule_into`` re-enacts the original timing on an event loop,
    shifted so the first record lands ``start_delay`` from now.
    """

    def __init__(self, records: List[TraceRecord]):
        self.records = records

    @classmethod
    def from_file(cls, source: Union[BinaryIO, bytes]) -> "TraceReplayer":
        """Load a replayer from trace bytes or an open file."""
        return cls(read_trace(source))

    def replay_into(self, receiver: Callable[[bytes], None]) -> int:
        """Deliver every chunk immediately; returns the record count."""
        for record in self.records:
            receiver(record.data)
        return len(self.records)

    def schedule_into(self, loop, receiver: Callable[[bytes], None],
                      start_delay: float = 0.0) -> None:
        if not self.records:
            return
        base = self.records[0].time
        for record in self.records:
            loop.schedule(start_delay + (record.time - base),
                          lambda d=record.data: receiver(d))


def summarize_trace(records: List[TraceRecord]) -> dict:
    """Headline numbers for a trace (the CLI's `trace` subcommand)."""
    from . import wire

    parser = wire.StreamParser()
    kinds: dict = {}
    for record in records:
        for msg in parser.feed(record.data):
            name = getattr(msg, "kind", type(msg).__name__)
            kinds[name] = kinds.get(name, 0) + 1
    total = sum(len(r.data) for r in records)
    duration = (records[-1].time - records[0].time) if records else 0.0
    return {
        "records": len(records),
        "bytes": total,
        "duration": duration,
        "messages": kinds,
        "unparsed_bytes": parser.pending_bytes,
    }
