"""RC4 stream cipher.

The THINC prototype encrypts all protocol traffic with RC4 (Section 7),
chosen because a stream cipher adds no padding and negligible per-byte
cost for the bursty, size-sensitive traffic of a thin-client session.
This is a faithful reimplementation used for protocol-fidelity testing
and for accounting the (null) size overhead of encryption in the
benchmarks.  RC4 is long obsolete as a security primitive; it is
implemented here solely to reproduce the paper's system, not for
protecting real data.
"""

from __future__ import annotations

__all__ = ["RC4", "rc4_keystream"]


class RC4:
    """Streaming RC4 with the standard KSA/PRGA.

    Instances are stateful: successive :meth:`process` calls continue the
    keystream, so a connection encrypts with a single instance per
    direction.  Encryption and decryption are the same operation.
    """

    def __init__(self, key: bytes):
        if not key:
            raise ValueError("RC4 key must be non-empty")
        if len(key) > 256:
            raise ValueError("RC4 key must be at most 256 bytes")
        # Key-scheduling algorithm.
        s = list(range(256))
        j = 0
        for i in range(256):
            j = (j + s[i] + key[i % len(key)]) % 256
            s[i], s[j] = s[j], s[i]
        self._s = s
        self._i = 0
        self._j = 0

    def keystream(self, length: int) -> bytes:
        """Generate *length* keystream bytes (PRGA)."""
        s = self._s
        i, j = self._i, self._j
        out = bytearray(length)
        for n in range(length):
            i = (i + 1) % 256
            j = (j + s[i]) % 256
            s[i], s[j] = s[j], s[i]
            out[n] = s[(s[i] + s[j]) % 256]
        self._i, self._j = i, j
        return bytes(out)

    def process(self, data: bytes) -> bytes:
        """XOR *data* with the next keystream bytes."""
        ks = self.keystream(len(data))
        return bytes(a ^ b for a, b in zip(data, ks))


def rc4_keystream(key: bytes, length: int) -> bytes:
    """Convenience: the first *length* keystream bytes for *key*."""
    return RC4(key).keystream(length)
