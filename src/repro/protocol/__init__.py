"""The THINC remote display protocol: commands, wire format, crypto."""

from .commands import (BitmapCommand, Command, CompositeCommand, CopyCommand,
                       OverwriteClass, PFillCommand, RawCommand,
                       SFillCommand, VideoFrameCommand, decode_command)
from .rc4 import RC4
from .wire import (AudioChunkMessage, InputMessage, Message, ResizeMessage,
                   ScreenInitMessage, VideoMoveMessage, VideoSetupMessage,
                   VideoTeardownMessage, encode_message, parse_messages)

__all__ = [
    "Command",
    "OverwriteClass",
    "RawCommand",
    "CopyCommand",
    "SFillCommand",
    "PFillCommand",
    "BitmapCommand",
    "CompositeCommand",
    "VideoFrameCommand",
    "decode_command",
    "RC4",
    "encode_message",
    "parse_messages",
    "Message",
    "VideoSetupMessage",
    "VideoMoveMessage",
    "VideoTeardownMessage",
    "AudioChunkMessage",
    "InputMessage",
    "ResizeMessage",
    "ScreenInitMessage",
]
