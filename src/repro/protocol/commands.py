"""THINC protocol command objects.

The five display commands of Table 1 (RAW, COPY, SFILL, PFILL, BITMAP)
plus the video-stream messages of Section 4.2, implemented in the
object-oriented style the paper describes: a generic interface the
server manipulates (sizing, clipping, merging, splitting, encoding)
with one concrete implementation per command.

Overwrite semantics (Section 4) drive the command queue:

* **partial** — opaque commands that may be partially overwritten; the
  queue clips them down to their still-visible remainder (RAW, COPY,
  PFILL, and BITMAP with an opaque background).
* **complete** — opaque commands that are only ever evicted whole
  (SFILL, whose split representation would cost more than it saves, and
  video frames, which successive frames overwrite wholesale).
* **transparent** — commands whose output depends on what was drawn
  beneath them; they never evict others and are themselves evicted only
  when fully covered (BITMAP glyph text with a transparent background,
  and alpha COMPOSITE blocks).

Every command knows its exact wire size; RAW is the only command whose
payload is compressed (Section 7).  Its wire tag is a bounded
:class:`~repro.codec.Encoding` enum — PNG-model lossless (the paper's
choice), RLE, JPEG-style lossy, or uncompressed — and the encoded bytes
are computed lazily and cached.
"""

from __future__ import annotations

import struct
from enum import Enum
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..codec import Encoding
from ..region import Rect, Region
from . import compression
from .limits import LIMITS

__all__ = [
    "OverwriteClass",
    "Command",
    "RawCommand",
    "CopyCommand",
    "SFillCommand",
    "PFillCommand",
    "BitmapCommand",
    "CompositeCommand",
    "VideoFrameCommand",
    "decode_command",
    "COMMAND_TYPES",
]

Color = Tuple[int, int, int, int]

_RECT = struct.Struct(">HHHH")
_HEADER = struct.Struct(">BHHHH")  # type + rect
# Per-command payload metadata, precompiled once at import.
_RAW_META = struct.Struct(">BI")       # encoding tag + payload length
_COPY_SRC = struct.Struct(">HH")       # src_x, src_y
_PFILL_META = struct.Struct(">BBBB")   # tile h/w + relative origin
_BOOL = struct.Struct(">B")
_U32 = struct.Struct(">I")
_VFRAME_META = struct.Struct(">HIBHHI")


class OverwriteClass(Enum):
    """How a command overwrites and is overwritten (Section 4)."""

    PARTIAL = "partial"
    COMPLETE = "complete"
    TRANSPARENT = "transparent"


def _pack_rect(rect: Rect) -> bytes:
    return _RECT.pack(rect.x, rect.y, rect.width, rect.height)


def _unpack_rect(data: bytes, offset: int) -> Tuple[Rect, int]:
    _decode_need(data, offset, _RECT.size, "command rect")
    x, y, w, h = _RECT.unpack_from(data, offset)
    return Rect(x, y, w, h), offset + _RECT.size


def _decode_need(data: bytes, offset: int, size: int, what: str) -> None:
    """Decode bounds guard: *size* more bytes must exist at *offset*.

    Raises a plain ValueError; the wire layer's frame dispatcher
    re-raises decoder failures as ProtocolError, so command decoders
    stay independent of the wire module (layering: wire imports
    commands, not the reverse).
    """
    if offset + size > len(data):
        raise ValueError(
            f"truncated {what}: need {size} bytes at offset {offset}, "
            f"have {len(data) - offset}")


class Command:
    """Generic interface over all protocol display commands."""

    kind: str = "?"
    type_id: int = 0
    overwrite_class: OverwriteClass = OverwriteClass.PARTIAL

    def __init__(self, dest: Rect):
        if dest.empty:
            raise ValueError(f"{type(self).__name__} needs a non-empty rect")
        self.dest = dest
        # Memoized wire size.  Commands are immutable once built (clip,
        # split and merge all create fresh instances), so the encoded
        # size can only be computed once; the cache keeps SRSF queue
        # placement and CommandQueue.total_wire_size from re-encoding
        # per call.
        self._wire_size: Optional[int] = None
        # Arrival sequence number; assigned when entering a CommandQueue.
        self.seq: int = -1
        # Real-time flag; set by the delivery layer near input events.
        self.realtime: bool = False
        # Scheduling floor: lowest SRSF queue index this command may be
        # placed in, raised by the dependency rules of Section 5.
        # -1 means the command has no dependencies.
        self.sched_floor: int = -1

    # -- geometry ------------------------------------------------------------

    @property
    def opaque_region(self) -> Region:
        """The pixels this command overwrites completely."""
        if self.overwrite_class is OverwriteClass.TRANSPARENT:
            return Region.empty()
        return Region.from_rect(self.dest)

    # -- queue manipulation ----------------------------------------------

    def translated(self, dx: int, dy: int) -> "Command":
        """A copy of this command drawing at a shifted location."""
        raise NotImplementedError

    def clipped(self, rects: Sequence[Rect]) -> List["Command"]:
        """Restrict the command to *rects* (subrects of ``dest``).

        Used by the queue to keep only the still-visible remainder of a
        partially overwritten command, and by the offscreen machinery to
        extract the part of a queue covered by a copy.
        """
        raise NotImplementedError

    def try_merge(self, later: "Command") -> Optional["Command"]:
        """Merge *later* (drawn after self) into one command, or None."""
        return None

    # -- delivery -----------------------------------------------------------

    def wire_size(self) -> int:
        """Exact bytes this command occupies on the wire (memoized)."""
        size = self._wire_size
        if size is None:
            size = self._wire_size = len(self.encode())
        return size

    def split(self, max_bytes: int) -> Tuple["Command", Optional["Command"]]:
        """Break off a prefix of at most *max_bytes* for non-blocking
        flushing; returns (head, remainder-or-None).

        Commands that cannot be usefully split return themselves whole —
        the flush layer then ships them in one piece once the socket has
        room.
        """
        return self, None

    # -- wire format ----------------------------------------------------------

    def encode(self) -> bytes:
        raise NotImplementedError

    def apply(self, fb) -> None:
        """Execute the command against a client framebuffer."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.dest!r})"


class RawCommand(Command):
    """RAW — display raw pixel data at a given location (Table 1).

    The last-resort command, and the only one whose payload may be
    compressed to mitigate its impact on the network.  The wire tag
    names one of the bounded :class:`~repro.codec.Encoding` values;
    ``compress`` accepts the historical boolean (False -> NONE,
    True -> PNG) as well as an explicit encoding.
    """

    kind = "raw"
    type_id = 1
    overwrite_class = OverwriteClass.PARTIAL

    def __init__(self, dest: Rect, pixels: np.ndarray, compress=True):
        super().__init__(dest)
        pixels = np.ascontiguousarray(pixels, dtype=np.uint8)
        if pixels.shape != (dest.height, dest.width, 4):
            raise ValueError(
                f"pixels {pixels.shape} do not match {dest!r}"
            )
        self.pixels = pixels
        if compress is True:
            self.encoding = Encoding.PNG
        elif compress is False:
            self.encoding = Encoding.NONE
        else:
            self.encoding = Encoding(int(compress))
        self._payload: Optional[bytes] = None
        # Estimated wire size for scheduling, set when this command is
        # the remainder of a split: avoids recompressing the whole tail
        # on every flush period just to know its queue.
        self._size_hint: Optional[int] = None

    @property
    def compress(self) -> bool:
        """Historical flag: is the payload anything but raw rows?"""
        return self.encoding is not Encoding.NONE

    def with_encoding(self, encoding) -> "RawCommand":
        """This command under another encoding (fresh payload memo)."""
        encoding = Encoding(int(encoding))
        if encoding is self.encoding:
            return self
        cmd = RawCommand(self.dest, self.pixels, encoding)
        cmd.seq = self.seq
        cmd.realtime = self.realtime
        cmd.sched_floor = self.sched_floor
        return cmd

    def _encoded_payload(self) -> bytes:
        if self._payload is None:
            if self.encoding is Encoding.PNG:
                self._payload = compression.png_compress(self.pixels)
            elif self.encoding is Encoding.RLE:
                self._payload = compression.rle_compress(self.pixels)
            elif self.encoding is Encoding.LOSSY:
                self._payload = compression.lossy_compress(self.pixels)
            else:
                self._payload = self.pixels.tobytes()
        return self._payload

    def wire_size(self) -> int:
        size = self._wire_size
        if size is None:
            if self._payload is None and self._size_hint is not None:
                # Scheduling estimate for a split remainder; not cached,
                # so the exact size takes over once the payload exists.
                return self._size_hint
            size = self._wire_size = len(self.encode())
        return size

    def translated(self, dx: int, dy: int) -> "RawCommand":
        cmd = RawCommand(self.dest.translate(dx, dy), self.pixels,
                         self.encoding)
        cmd._payload = self._payload
        cmd._wire_size = self._wire_size
        return cmd

    def clipped(self, rects: Sequence[Rect]) -> List[Command]:
        out: List[Command] = []
        for r in rects:
            sub = r.intersect(self.dest)
            if sub.empty:
                continue
            block = self.pixels[
                sub.y - self.dest.y : sub.y2 - self.dest.y,
                sub.x - self.dest.x : sub.x2 - self.dest.x,
            ]
            out.append(RawCommand(sub, block, self.encoding))
        return out

    def try_merge(self, later: Command) -> Optional[Command]:
        if not isinstance(later, RawCommand) \
                or later.encoding is not self.encoding:
            return None
        a, b = self.dest, later.dest
        # Vertical continuation (scan-line chunks of one image).
        if a.x == b.x and a.width == b.width and a.y2 == b.y:
            merged = Rect(a.x, a.y, a.width, a.height + b.height)
            return RawCommand(merged,
                              np.vstack([self.pixels, later.pixels]),
                              self.encoding)
        # Horizontal continuation.
        if a.y == b.y and a.height == b.height and a.x2 == b.x:
            merged = Rect(a.x, a.y, a.width + b.width, a.height)
            return RawCommand(merged,
                              np.hstack([self.pixels, later.pixels]),
                              self.encoding)
        return None

    def _tail_size_estimate(self, rows: np.ndarray, per_row: int) -> int:
        """Estimated wire size of a split tail carrying *rows*.

        Computed from the encoding the tail actually carries, so the
        scheduler's queue placement stays honest: NONE and RLE have
        cheap exact sizes; the DEFLATE-backed encodings (PNG, LOSSY)
        fall back to the parent's measured per-row cost.
        """
        overhead = _HEADER.size + _RAW_META.size
        if self.encoding is Encoding.NONE:
            return overhead + rows.size
        if self.encoding is Encoding.RLE:
            return overhead + compression.rle_size(rows)
        return overhead + per_row * rows.shape[0]

    def split(self, max_bytes: int) -> Tuple[Command, Optional[Command]]:
        # Split by scan lines so partially sent updates show whole rows.
        if self.dest.height <= 1:
            return self, None
        overhead = _HEADER.size + _RAW_META.size
        if self.wire_size() <= max_bytes:
            return self, None
        per_row = max(1, (self.wire_size() - overhead) // self.dest.height)
        rows = max(1, (max_bytes - overhead) // per_row)
        rows = min(rows, self.dest.height - 1)
        top = Rect(self.dest.x, self.dest.y, self.dest.width, rows)
        bottom = Rect(self.dest.x, self.dest.y + rows, self.dest.width,
                      self.dest.height - rows)
        head = RawCommand(top, self.pixels[:rows], self.encoding)
        rest = RawCommand(bottom, self.pixels[rows:], self.encoding)
        rest._size_hint = self._tail_size_estimate(self.pixels[rows:],
                                                   per_row)
        head.seq = rest.seq = self.seq
        head.realtime = rest.realtime = self.realtime
        head.sched_floor = rest.sched_floor = self.sched_floor
        return head, rest

    def encode(self) -> bytes:
        payload = self._encoded_payload()
        return (_HEADER.pack(self.type_id, *self.dest.as_tuple())
                + _RAW_META.pack(int(self.encoding), len(payload))
                + payload)

    @classmethod
    def decode(cls, data: bytes, offset: int) -> "RawCommand":
        rect, offset = _unpack_rect(data, offset)
        _decode_need(data, offset, _RAW_META.size, "RAW metadata")
        encoding, length = _RAW_META.unpack_from(data, offset)
        offset += _RAW_META.size
        if encoding > LIMITS.max_raw_encoding:
            raise ValueError(f"unknown RAW encoding tag {encoding}")
        _decode_need(data, offset, length, "RAW payload")
        payload = data[offset : offset + length]
        if encoding == Encoding.PNG:
            pixels = compression.png_decompress(payload)
        elif encoding == Encoding.RLE:
            pixels = compression.rle_decompress(payload)
        elif encoding == Encoding.LOSSY:
            pixels = compression.lossy_decompress(payload)
        else:
            if length != rect.height * rect.width * 4:
                raise ValueError(
                    f"RAW payload is {length} bytes, rect {rect!r} "
                    f"needs {rect.height * rect.width * 4}")
            pixels = np.frombuffer(payload, dtype=np.uint8).reshape(
                rect.height, rect.width, 4)
        if pixels.shape != (rect.height, rect.width, 4):
            raise ValueError(
                f"RAW payload decoded to {pixels.shape}, rect "
                f"is {rect!r}")
        cmd = cls(rect, pixels, encoding)
        cmd._payload = bytes(payload)
        return cmd

    def apply(self, fb) -> None:
        fb.put_pixels(self.dest, self.pixels)


class CopyCommand(Command):
    """COPY — copy a framebuffer area to new coordinates (Table 1).

    Accelerates scrolling and opaque window movement without resending
    screen data; only src/dst coordinates travel on the wire.
    """

    kind = "copy"
    type_id = 2

    def __init__(self, src_x: int, src_y: int, dest: Rect):
        super().__init__(dest)
        if src_x < 0 or src_y < 0:
            raise ValueError("COPY source must be within the framebuffer")
        self.src_x = src_x
        self.src_y = src_y

    @property
    def src_rect(self) -> Rect:
        return Rect(self.src_x, self.src_y, self.dest.width,
                    self.dest.height)

    @property
    def overwrite_class(self) -> OverwriteClass:  # type: ignore[override]
        """Self-overlapping copies (scrolls) must stay atomic.

        The client executes a COPY as one snapshot-then-store blit.  If
        the queue fragmented a copy whose source overlaps its own
        destination, one fragment could overwrite pixels a later
        fragment still needs to read — so such copies are COMPLETE
        (evicted only whole); disjoint copies fragment safely.
        """
        if self.src_rect.overlaps(self.dest):
            return OverwriteClass.COMPLETE
        return OverwriteClass.PARTIAL

    def translated(self, dx: int, dy: int) -> "CopyCommand":
        # Translation moves the whole coordinate frame (offscreen queue
        # relocation), so the source shifts with the destination.
        return CopyCommand(self.src_x + dx, self.src_y + dy,
                           self.dest.translate(dx, dy))

    def clipped(self, rects: Sequence[Rect]) -> List[Command]:
        out: List[Command] = []
        for r in rects:
            sub = r.intersect(self.dest)
            if sub.empty:
                continue
            out.append(CopyCommand(
                self.src_x + (sub.x - self.dest.x),
                self.src_y + (sub.y - self.dest.y),
                sub,
            ))
        return out

    def encode(self) -> bytes:
        return (_HEADER.pack(self.type_id, *self.dest.as_tuple())
                + _COPY_SRC.pack(self.src_x, self.src_y))

    @classmethod
    def decode(cls, data: bytes, offset: int) -> "CopyCommand":
        rect, offset = _unpack_rect(data, offset)
        _decode_need(data, offset, _COPY_SRC.size, "COPY source")
        sx, sy = _COPY_SRC.unpack_from(data, offset)
        return cls(sx, sy, rect)

    def apply(self, fb) -> None:
        fb.copy_area(self.src_rect, self.dest.x, self.dest.y)


class SFillCommand(Command):
    """SFILL — fill an area with a single colour (Table 1)."""

    kind = "sfill"
    type_id = 3
    overwrite_class = OverwriteClass.COMPLETE

    def __init__(self, dest: Rect, color: Color):
        super().__init__(dest)
        if len(color) != 4:
            raise ValueError("colour must have 4 components (RGBA)")
        self.color = tuple(int(c) & 0xFF for c in color)

    def translated(self, dx: int, dy: int) -> "SFillCommand":
        return SFillCommand(self.dest.translate(dx, dy), self.color)

    def clipped(self, rects: Sequence[Rect]) -> List[Command]:
        return [SFillCommand(r.intersect(self.dest), self.color)
                for r in rects if r.intersect(self.dest)]

    def try_merge(self, later: Command) -> Optional[Command]:
        if not isinstance(later, SFillCommand) or later.color != self.color:
            return None
        a, b = self.dest, later.dest
        if a.x == b.x and a.width == b.width and a.y2 == b.y:
            return SFillCommand(Rect(a.x, a.y, a.width,
                                     a.height + b.height), self.color)
        if a.y == b.y and a.height == b.height and a.x2 == b.x:
            return SFillCommand(Rect(a.x, a.y, a.width + b.width,
                                     a.height), self.color)
        return None

    def encode(self) -> bytes:
        return (_HEADER.pack(self.type_id, *self.dest.as_tuple())
                + bytes(self.color))

    @classmethod
    def decode(cls, data: bytes, offset: int) -> "SFillCommand":
        rect, offset = _unpack_rect(data, offset)
        if len(data) < offset + 4:
            raise ValueError("truncated SFILL command")
        color = tuple(data[offset : offset + 4])
        return cls(rect, color)  # type: ignore[arg-type]

    def apply(self, fb) -> None:
        fb.fill_rect(self.dest, self.color)


class PFillCommand(Command):
    """PFILL — tile an area with a pixel pattern (Table 1)."""

    kind = "pfill"
    type_id = 4
    overwrite_class = OverwriteClass.PARTIAL

    def __init__(self, dest: Rect, tile: np.ndarray,
                 origin: Tuple[int, int] = (0, 0)):
        super().__init__(dest)
        tile = np.ascontiguousarray(tile, dtype=np.uint8)
        if tile.ndim != 3 or tile.shape[2] != 4 or tile.size == 0:
            raise ValueError("tile must be a non-empty HxWx4 array")
        if tile.shape[0] > 0xFF or tile.shape[1] > 0xFF:
            raise ValueError("tiles larger than 255x255 are not sensible")
        self.tile = tile
        self.origin = (int(origin[0]), int(origin[1]))

    def translated(self, dx: int, dy: int) -> "PFillCommand":
        return PFillCommand(self.dest.translate(dx, dy), self.tile,
                            (self.origin[0] + dx, self.origin[1] + dy))

    def clipped(self, rects: Sequence[Rect]) -> List[Command]:
        return [PFillCommand(r.intersect(self.dest), self.tile, self.origin)
                for r in rects if r.intersect(self.dest)]

    def try_merge(self, later: Command) -> Optional[Command]:
        if (not isinstance(later, PFillCommand)
                or later.origin != self.origin
                or later.tile.shape != self.tile.shape
                or not np.array_equal(later.tile, self.tile)):
            return None
        a, b = self.dest, later.dest
        if a.x == b.x and a.width == b.width and a.y2 == b.y:
            return PFillCommand(Rect(a.x, a.y, a.width,
                                     a.height + b.height),
                                self.tile, self.origin)
        if a.y == b.y and a.height == b.height and a.x2 == b.x:
            return PFillCommand(Rect(a.x, a.y, a.width + b.width,
                                     a.height), self.tile, self.origin)
        return None

    def encode(self) -> bytes:
        th, tw = self.tile.shape[0], self.tile.shape[1]
        # Origin is transmitted relative to the dest rect, so it always
        # fits in a tile-sized signed offset.
        ox = (self.origin[0] - self.dest.x) % tw
        oy = (self.origin[1] - self.dest.y) % th
        return (_HEADER.pack(self.type_id, *self.dest.as_tuple())
                + _PFILL_META.pack(th, tw, oy, ox)
                + self.tile.tobytes())

    @classmethod
    def decode(cls, data: bytes, offset: int) -> "PFillCommand":
        rect, offset = _unpack_rect(data, offset)
        _decode_need(data, offset, _PFILL_META.size, "PFILL metadata")
        th, tw, oy, ox = _PFILL_META.unpack_from(data, offset)
        offset += _PFILL_META.size
        count = th * tw * 4
        _decode_need(data, offset, count, "PFILL tile")
        tile = np.frombuffer(data[offset : offset + count],
                             dtype=np.uint8).reshape(th, tw, 4)
        # Reconstruct an absolute origin equivalent to the relative one.
        return cls(rect, tile, (rect.x + ox - tw, rect.y + oy - th))

    def apply(self, fb) -> None:
        fb.tile_rect(self.dest, self.tile, self.origin)


class BitmapCommand(Command):
    """BITMAP — fill a region through a 1-bit stipple (Table 1).

    With a background colour the fill is opaque (partial class); without
    one the zero bits leave existing content intact, making the command
    transparent — this is how glyph text travels.
    """

    kind = "bitmap"
    type_id = 5

    def __init__(self, dest: Rect, mask: np.ndarray, fg: Color,
                 bg: Optional[Color] = None):
        super().__init__(dest)
        mask = np.ascontiguousarray(mask, dtype=bool)
        if mask.shape != (dest.height, dest.width):
            raise ValueError(f"mask {mask.shape} does not match {dest!r}")
        self.mask = mask
        if len(fg) != 4 or (bg is not None and len(bg) != 4):
            raise ValueError("colours must have 4 components (RGBA)")
        self.fg = tuple(int(c) & 0xFF for c in fg)
        self.bg = None if bg is None else tuple(int(c) & 0xFF for c in bg)

    @property
    def overwrite_class(self) -> OverwriteClass:  # type: ignore[override]
        return (OverwriteClass.PARTIAL if self.bg is not None
                else OverwriteClass.TRANSPARENT)

    def translated(self, dx: int, dy: int) -> "BitmapCommand":
        return BitmapCommand(self.dest.translate(dx, dy), self.mask,
                             self.fg, self.bg)

    def clipped(self, rects: Sequence[Rect]) -> List[Command]:
        out: List[Command] = []
        for r in rects:
            sub = r.intersect(self.dest)
            if sub.empty:
                continue
            m = self.mask[
                sub.y - self.dest.y : sub.y2 - self.dest.y,
                sub.x - self.dest.x : sub.x2 - self.dest.x,
            ]
            out.append(BitmapCommand(sub, m, self.fg, self.bg))
        return out

    def try_merge(self, later: Command) -> Optional[Command]:
        """Merge runs of glyphs on a text baseline.

        Transparent stipples may merge across a small gap (the blank
        inter-glyph column): the gap is padded with zero bits, which a
        transparent stipple leaves untouched.  Opaque stipples must be
        exactly adjacent, since padding would wrongly paint background.
        """
        if (not isinstance(later, BitmapCommand)
                or later.fg != self.fg or later.bg != self.bg):
            return None
        a, b = self.dest, later.dest
        if a.y != b.y or a.height != b.height:
            return None
        gap = b.x - a.x2
        max_gap = 2 if self.bg is None else 0
        if gap < 0 or gap > max_gap:
            return None
        pad = np.zeros((a.height, gap), dtype=bool)
        merged_mask = np.hstack([self.mask, pad, later.mask])
        merged_rect = Rect(a.x, a.y, a.width + gap + b.width, a.height)
        return BitmapCommand(merged_rect, merged_mask, self.fg, self.bg)

    def encode(self) -> bytes:
        packed = np.packbits(self.mask, axis=1).tobytes()
        has_bg = self.bg is not None
        bg = self.bg if has_bg else (0, 0, 0, 0)
        return (_HEADER.pack(self.type_id, *self.dest.as_tuple())
                + bytes(self.fg) + _BOOL.pack(int(has_bg))
                + bytes(bg) + packed)

    @classmethod
    def decode(cls, data: bytes, offset: int) -> "BitmapCommand":
        rect, offset = _unpack_rect(data, offset)
        if len(data) < offset + 9:
            raise ValueError("truncated BITMAP command")
        fg = tuple(data[offset : offset + 4])
        has_bg = data[offset + 4]
        bg = tuple(data[offset + 5 : offset + 9]) if has_bg else None
        offset += 9
        row_bytes = (rect.width + 7) // 8
        _decode_need(data, offset, row_bytes * rect.height, "BITMAP mask")
        packed = np.frombuffer(
            data[offset : offset + row_bytes * rect.height], dtype=np.uint8
        ).reshape(rect.height, row_bytes)
        mask = np.unpackbits(packed, axis=1)[:, : rect.width].astype(bool)
        return cls(rect, mask, fg, bg)  # type: ignore[arg-type]

    def apply(self, fb) -> None:
        fb.stipple_rect(self.dest, self.mask, self.fg, self.bg)


class CompositeCommand(Command):
    """An alpha-blended RGBA block (Porter–Duff "over").

    Not one of the five Table 1 commands, but required by THINC's 24-bit
    + alpha design for graphics compositing (Section 3): anti-aliased
    text and translucent UI travel as transparent commands.
    """

    kind = "composite"
    type_id = 6
    overwrite_class = OverwriteClass.TRANSPARENT

    def __init__(self, dest: Rect, pixels: np.ndarray):
        super().__init__(dest)
        pixels = np.ascontiguousarray(pixels, dtype=np.uint8)
        if pixels.shape != (dest.height, dest.width, 4):
            raise ValueError(f"pixels {pixels.shape} do not match {dest!r}")
        self.pixels = pixels
        self._payload: Optional[bytes] = None

    def _encoded_payload(self) -> bytes:
        if self._payload is None:
            self._payload = compression.png_compress(self.pixels)
        return self._payload

    def translated(self, dx: int, dy: int) -> "CompositeCommand":
        cmd = CompositeCommand(self.dest.translate(dx, dy), self.pixels)
        cmd._payload = self._payload
        cmd._wire_size = self._wire_size
        return cmd

    def clipped(self, rects: Sequence[Rect]) -> List[Command]:
        out: List[Command] = []
        for r in rects:
            sub = r.intersect(self.dest)
            if sub.empty:
                continue
            block = self.pixels[
                sub.y - self.dest.y : sub.y2 - self.dest.y,
                sub.x - self.dest.x : sub.x2 - self.dest.x,
            ]
            out.append(CompositeCommand(sub, block))
        return out

    def encode(self) -> bytes:
        payload = self._encoded_payload()
        return (_HEADER.pack(self.type_id, *self.dest.as_tuple())
                + _U32.pack(len(payload)) + payload)

    @classmethod
    def decode(cls, data: bytes, offset: int) -> "CompositeCommand":
        rect, offset = _unpack_rect(data, offset)
        _decode_need(data, offset, _U32.size, "COMPOSITE metadata")
        (length,) = _U32.unpack_from(data, offset)
        start = offset + _U32.size
        _decode_need(data, start, length, "COMPOSITE payload")
        pixels = compression.png_decompress(data[start : start + length])
        if pixels.shape != (rect.height, rect.width, 4):
            raise ValueError(
                f"COMPOSITE payload decompressed to {pixels.shape}, "
                f"rect is {rect!r}")
        cmd = cls(rect, pixels)
        return cmd

    def apply(self, fb) -> None:
        fb.composite(self.dest, self.pixels)


class VideoFrameCommand(Command):
    """One YV12 video frame presented to a screen rectangle.

    Video frames ride the same delivery pipeline as display commands so
    that the client buffer's eviction semantics give frame dropping
    under congestion for free: a newer frame at the same destination
    completely overwrites an older one that has not yet been sent.
    """

    kind = "vframe"
    type_id = 7
    overwrite_class = OverwriteClass.COMPLETE

    PIXEL_FORMATS = ("YV12", "YUY2")

    def __init__(self, stream_id: int, dest: Rect, src_width: int,
                 src_height: int, yuv_bytes: bytes, frame_no: int = 0,
                 pixel_format: str = "YV12"):
        super().__init__(dest)
        from ..video import yuv as yuvmod

        if pixel_format not in self.PIXEL_FORMATS:
            raise ValueError(f"unknown pixel format {pixel_format!r}")
        expected = yuvmod.frame_size(pixel_format, src_width, src_height)
        if len(yuv_bytes) != expected:
            raise ValueError(
                f"{pixel_format} payload is {len(yuv_bytes)} bytes, "
                f"expected {expected}"
            )
        self.stream_id = stream_id
        self.src_width = src_width
        self.src_height = src_height
        self.yuv_bytes = yuv_bytes
        self.frame_no = frame_no
        self.pixel_format = pixel_format

    def translated(self, dx: int, dy: int) -> "VideoFrameCommand":
        return VideoFrameCommand(self.stream_id, self.dest.translate(dx, dy),
                                 self.src_width, self.src_height,
                                 self.yuv_bytes, self.frame_no,
                                 self.pixel_format)

    def clipped(self, rects: Sequence[Rect]) -> List[Command]:
        # COMPLETE commands are never partially evicted; clipping keeps
        # the whole frame when any part is requested.
        for r in rects:
            if r.intersect(self.dest):
                return [self]
        return []

    def encode(self) -> bytes:
        fmt_id = self.PIXEL_FORMATS.index(self.pixel_format)
        return (_HEADER.pack(self.type_id, *self.dest.as_tuple())
                + _VFRAME_META.pack(self.stream_id, self.frame_no,
                                    fmt_id, self.src_width, self.src_height,
                                    len(self.yuv_bytes))
                + self.yuv_bytes)

    @classmethod
    def decode(cls, data: bytes, offset: int) -> "VideoFrameCommand":
        rect, offset = _unpack_rect(data, offset)
        _decode_need(data, offset, _VFRAME_META.size, "VFRAME metadata")
        stream_id, frame_no, fmt_id, sw, sh, length = (
            _VFRAME_META.unpack_from(data, offset))
        offset += _VFRAME_META.size
        if fmt_id >= len(cls.PIXEL_FORMATS):
            raise ValueError(f"unknown VFRAME pixel format id {fmt_id}")
        _decode_need(data, offset, length, "VFRAME payload")
        return cls(stream_id, rect, sw, sh, data[offset : offset + length],
                   frame_no, cls.PIXEL_FORMATS[fmt_id])

    def apply(self, fb) -> None:
        from ..video import yuv as yuvmod

        rgb = yuvmod.decode_frame(self.pixel_format, self.yuv_bytes,
                                  self.src_width, self.src_height)
        scaled = yuvmod.scale_rgb(rgb, self.dest.width, self.dest.height)
        alpha = np.full(scaled.shape[:2] + (1,), 255, dtype=np.uint8)
        fb.put_pixels(self.dest, np.concatenate([scaled, alpha], axis=2))


COMMAND_TYPES = {
    cls.type_id: cls
    for cls in (RawCommand, CopyCommand, SFillCommand, PFillCommand,
                BitmapCommand, CompositeCommand, VideoFrameCommand)
}


def decode_command(data: bytes, offset: int = 0) -> Command:
    """Decode one command from *data* starting at *offset*."""
    type_id = data[offset]
    try:
        cls = COMMAND_TYPES[type_id]
    except KeyError:
        raise ValueError(f"unknown command type {type_id}") from None
    return cls.decode(data, offset + 1)
