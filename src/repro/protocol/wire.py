"""Wire format: message framing for the THINC protocol.

Every protocol message is framed as::

    +------+----------+-----------------+
    | type | length   | payload         |
    | u8   | u32 (BE) | `length` bytes  |
    +------+----------+-----------------+

Display commands (``repro.protocol.commands``) are one message family;
this module adds the stream-control and session messages: video stream
lifecycle (Section 4.2), audio chunks with server-side timestamps,
client input events, the client's viewport-size report that drives
server-side scaling (Section 6), and the initial screen geometry.

**Bounded decoding.**  Every ``decode_payload`` validates lengths,
dimensions and enum ranges against the typed limits in
:mod:`repro.protocol.limits` *before* touching the bytes, and raises a
:class:`ProtocolError` subclass — never ``struct.error``, a numpy
shape explosion, or silent garbage.  The parse entry points
(:func:`parse_messages`, :class:`StreamParser`) uphold the same
contract for the display-command family by translating their decoder
failures into :class:`ProtocolError`.  Receivers can therefore treat
``except ProtocolError`` as the complete failure surface of a
malformed stream.
"""

from __future__ import annotations

import math
import struct
import zlib
from dataclasses import dataclass
from typing import Collection, Optional, Union

from ..region import Rect
from .commands import Command, decode_command
from .limits import LIMITS

__all__ = [
    "StreamParser",
    "CursorImageMessage",
    "RefreshRequestMessage",
    "ZoomRequestMessage",
    "VideoSetupMessage",
    "VideoMoveMessage",
    "VideoTeardownMessage",
    "AudioChunkMessage",
    "InputMessage",
    "ResizeMessage",
    "ScreenInitMessage",
    "CheckedFrame",
    "HeartbeatMessage",
    "ReconnectRequestMessage",
    "ReconnectAcceptMessage",
    "ReconnectDeniedMessage",
    "AttachDeniedMessage",
    "SessionTransferMessage",
    "MigrateBeginMessage",
    "MigrateCompleteMessage",
    "ShardAdmissionReportMessage",
    "SubscribeMessage",
    "TileAssignMessage",
    "VideoQualityMessage",
    "QosReportMessage",
    "SUBSCRIBE_MIRROR",
    "SUBSCRIBE_TILE",
    "ProtocolError",
    "ChecksumError",
    "TruncatedPayloadError",
    "FrameTooLargeError",
    "FieldRangeError",
    "Message",
    "FRAME_OVERHEAD",
    "CHECKED_OVERHEAD",
    "RESYNC_FRESH",
    "RESYNC_REPLAY",
    "RESYNC_SNAPSHOT",
    "DENY_SERVER_FULL",
    "DENY_SESSION_BUDGET",
    "DENY_QUARANTINED",
    "frame_message",
    "parse_messages",
    "encode_message",
    "wrap_checked",
]


class ProtocolError(ValueError):
    """A malformed or inconsistent protocol stream.

    Subclasses :class:`ValueError` so generic stream-robustness code
    (and the fuzz suite) treats it like any other parse failure, while
    resilience-aware receivers can catch it specifically and trigger a
    resync instead of crashing.
    """


class ChecksumError(ProtocolError):
    """A CHECKED frame whose payload fails its CRC — corruption on the
    wire reached the parser."""


class TruncatedPayloadError(ProtocolError):
    """A payload shorter (or longer) than its message layout requires."""


class FrameTooLargeError(ProtocolError):
    """A length field declares more bytes than the typed limit allows."""


class FieldRangeError(ProtocolError):
    """A decoded field is outside its legal range (bad enum id,
    impossible dimension, non-finite float)."""


_FRAME = struct.Struct(">BI")

# Message payload formats, precompiled once at import so encode/decode
# never re-parse a format string on the hot path.
_VSETUP_HDR = struct.Struct(">HBHHHHHH")
_VMOVE_BODY = struct.Struct(">HHHHH")
_STREAM_ID = struct.Struct(">H")
_TIMESTAMP = struct.Struct(">d")
_INPUT_BODY = struct.Struct(">BHHd")
_SIZE_PAIR = struct.Struct(">HH")
_RECT_BODY = struct.Struct(">HHHH")
_CURSOR_HDR = struct.Struct(">HHHH")

# Bytes the frame header adds around every message payload.  Exposed so
# flush-time size arithmetic (repro.core.delivery) can never drift from
# the actual framing format.
FRAME_OVERHEAD = _FRAME.size

# Message type ids 1..7 belong to display commands (commands.py).
_VSETUP, _VMOVE, _VTEARDOWN = 16, 17, 18
_AUDIO = 19
_INPUT = 20
_RESIZE = 21
_SCREEN_INIT = 22
_CURSOR_IMAGE = 23
_REFRESH = 24
_ZOOM = 25
_CHECKED = 26
_HEARTBEAT = 27
_RECONNECT_REQ = 28
_RECONNECT_ACCEPT = 29
_RECONNECT_DENIED = 30
_ATTACH_DENIED = 31
_SESSION_TRANSFER = 32
_MIGRATE_BEGIN = 33
_MIGRATE_COMPLETE = 34
_SHARD_ADMISSION = 35
_SUBSCRIBE = 36
_TILE_ASSIGN = 37
_VIDEO_QUALITY = 38
_QOS_REPORT = 39

_INPUT_KINDS = ("mouse-move", "mouse-click", "key")

# CHECKED frame payload prefix and resilience message bodies.
_U32 = struct.Struct(">I")
_HEARTBEAT_BODY = struct.Struct(">Id")
_RECONNECT_BODY = struct.Struct(">II")
_ACCEPT_BODY = struct.Struct(">IB")
_DENIED_BODY = struct.Struct(">d")
_ATTACH_DENIED_BODY = struct.Struct(">Bd")

# Fabric (shard-to-shard) message bodies.
_MIGRATE_BODY = struct.Struct(">IH")
_ADMISSION_BODY = struct.Struct(">HIQB")

# Broadcast fan-out control bodies.
_SUBSCRIBE_BODY = struct.Struct(">BHHI")
_TILE_ASSIGN_BODY = struct.Struct(">HHHHHH")

# QoS plane bodies.
_VIDEO_QUALITY_BODY = struct.Struct(">HBBBB")
_QOS_REPORT_BODY = struct.Struct(">HIddd")

# Subscription modes carried by SubscribeMessage.
SUBSCRIBE_MIRROR = 0  # receive the full desktop (scaled to viewport)
SUBSCRIBE_TILE = 1  # own one tile of a cols x rows display wall

# Extra bytes a CHECKED wrapper adds around an already-framed message:
# its own [type u8][len u32] header plus crc32[u32] and seq[u32].
CHECKED_OVERHEAD = _FRAME.size + 2 * _U32.size

# Resync kinds carried by ReconnectAcceptMessage.
RESYNC_FRESH = 0  # brand-new session: full state follows anyway
RESYNC_REPLAY = 1  # unacked frames replayed from the session log
RESYNC_SNAPSHOT = 2  # log/queue was dropped: region-chunked RAW refresh

# Admission-denial reasons carried by AttachDeniedMessage.
DENY_SERVER_FULL = 0  # global session or byte budget exhausted
DENY_SESSION_BUDGET = 1  # this session exceeded its resource budget
DENY_QUARANTINED = 2  # the session was quarantined for protocol abuse

_DENY_REASONS = (DENY_SERVER_FULL, DENY_SESSION_BUDGET, DENY_QUARANTINED)


def _need(data: bytes, size: int, what: str) -> None:
    """Bounds guard: *data* must hold at least *size* bytes."""
    if len(data) < size:
        raise TruncatedPayloadError(
            f"{what}: need {size} bytes, have {len(data)}")


def _exactly(data: bytes, size: int, what: str) -> None:
    """Bounds guard: *data* must be exactly *size* bytes.

    Fixed-layout messages reject trailing garbage too — excess bytes
    mean the sender and receiver disagree about the layout, and silent
    tolerance would let that disagreement fester.
    """
    if len(data) != size:
        raise TruncatedPayloadError(
            f"{what}: payload is {len(data)} bytes, layout needs {size}")


def _finite(value: float, what: str) -> float:
    """Range guard: a wire float must be finite (NaN/inf poison clocks
    and backoff arithmetic downstream)."""
    if not math.isfinite(value):
        raise FieldRangeError(f"{what}: {value!r} is not a finite number")
    return value


@dataclass(frozen=True)
class VideoSetupMessage:
    """Open a video stream on the client (format + geometry)."""

    stream_id: int
    pixel_format: str
    src_width: int
    src_height: int
    dst_rect: Rect

    type_id = _VSETUP

    def encode_payload(self) -> bytes:
        fmt = self.pixel_format.encode("ascii")
        return _VSETUP_HDR.pack(self.stream_id, len(fmt),
                                self.src_width, self.src_height,
                                *self.dst_rect.as_tuple()) + fmt

    @classmethod
    def decode_payload(cls, data: bytes) -> "VideoSetupMessage":
        _need(data, _VSETUP_HDR.size, "VSETUP header")
        sid, fmt_len, sw, sh, x, y, w, h = _VSETUP_HDR.unpack_from(data)
        if fmt_len > LIMITS.max_pixel_format_len:
            raise FieldRangeError(
                f"VSETUP format tag of {fmt_len} bytes exceeds "
                f"{LIMITS.max_pixel_format_len}")
        if not (1 <= sw <= LIMITS.max_viewport_dim
                and 1 <= sh <= LIMITS.max_viewport_dim):
            raise FieldRangeError(
                f"VSETUP source geometry {sw}x{sh} out of range")
        start = _VSETUP_HDR.size
        _exactly(data, start + fmt_len, "VSETUP")
        try:
            fmt = data[start : start + fmt_len].decode("ascii")
        except UnicodeDecodeError as exc:
            raise FieldRangeError(
                f"VSETUP format tag is not ASCII: {exc}") from exc
        return cls(sid, fmt, sw, sh, Rect(x, y, w, h))


@dataclass(frozen=True)
class VideoMoveMessage:
    """Move/resize a stream's output window."""

    stream_id: int
    dst_rect: Rect

    type_id = _VMOVE

    def encode_payload(self) -> bytes:
        return _VMOVE_BODY.pack(self.stream_id,
                                *self.dst_rect.as_tuple())

    @classmethod
    def decode_payload(cls, data: bytes) -> "VideoMoveMessage":
        _exactly(data, _VMOVE_BODY.size, "VMOVE")
        sid, x, y, w, h = _VMOVE_BODY.unpack_from(data)
        return cls(sid, Rect(x, y, w, h))


@dataclass(frozen=True)
class VideoTeardownMessage:
    """Close a video stream."""

    stream_id: int

    type_id = _VTEARDOWN

    def encode_payload(self) -> bytes:
        return _STREAM_ID.pack(self.stream_id)

    @classmethod
    def decode_payload(cls, data: bytes) -> "VideoTeardownMessage":
        _exactly(data, _STREAM_ID.size, "VTEARDOWN")
        (sid,) = _STREAM_ID.unpack_from(data)
        return cls(sid)


@dataclass(frozen=True)
class AudioChunkMessage:
    """A block of audio samples stamped with server time (Section 4.2)."""

    timestamp: float
    samples: bytes

    type_id = _AUDIO

    def encode_payload(self) -> bytes:
        return _TIMESTAMP.pack(self.timestamp) + self.samples

    @classmethod
    def decode_payload(cls, data: bytes) -> "AudioChunkMessage":
        _need(data, _TIMESTAMP.size, "AUDIO header")
        if len(data) - _TIMESTAMP.size > LIMITS.max_audio_chunk_bytes:
            raise FrameTooLargeError(
                f"AUDIO chunk of {len(data) - _TIMESTAMP.size} bytes "
                f"exceeds {LIMITS.max_audio_chunk_bytes}")
        (ts,) = _TIMESTAMP.unpack_from(data)
        return cls(_finite(ts, "AUDIO timestamp"), data[_TIMESTAMP.size:])


@dataclass(frozen=True)
class InputMessage:
    """Client-to-server user input."""

    kind: str
    x: int
    y: int
    time: float

    type_id = _INPUT

    def encode_payload(self) -> bytes:
        kind_id = _INPUT_KINDS.index(self.kind)
        return _INPUT_BODY.pack(kind_id, self.x, self.y, self.time)

    @classmethod
    def decode_payload(cls, data: bytes) -> "InputMessage":
        _exactly(data, _INPUT_BODY.size, "INPUT")
        kind_id, x, y, t = _INPUT_BODY.unpack_from(data)
        if kind_id >= len(_INPUT_KINDS):
            raise FieldRangeError(f"unknown input kind id {kind_id}")
        return cls(_INPUT_KINDS[kind_id], x, y, _finite(t, "INPUT time"))


@dataclass(frozen=True)
class ResizeMessage:
    """Client reports its viewport size; enables server-side scaling."""

    width: int
    height: int

    type_id = _RESIZE

    def encode_payload(self) -> bytes:
        return _SIZE_PAIR.pack(self.width, self.height)

    @classmethod
    def decode_payload(cls, data: bytes) -> "ResizeMessage":
        _exactly(data, _SIZE_PAIR.size, "RESIZE")
        w, h = _SIZE_PAIR.unpack_from(data)
        if not (1 <= w <= LIMITS.max_viewport_dim
                and 1 <= h <= LIMITS.max_viewport_dim):
            raise FieldRangeError(f"RESIZE viewport {w}x{h} out of range")
        return cls(w, h)


@dataclass(frozen=True)
class CursorImageMessage:
    """Server pushes a new cursor shape; the client tracks position
    locally for zero-latency pointer feedback (hardware cursor model).
    """

    hot_x: int
    hot_y: int
    width: int
    height: int
    rgba: bytes  # width*height*4 straight-alpha pixels

    type_id = _CURSOR_IMAGE

    def __post_init__(self):
        if len(self.rgba) != self.width * self.height * 4:
            raise ValueError("cursor pixel payload does not match size")

    def encode_payload(self) -> bytes:
        return _CURSOR_HDR.pack(self.hot_x, self.hot_y, self.width,
                                self.height) + self.rgba

    @classmethod
    def decode_payload(cls, data: bytes) -> "CursorImageMessage":
        _need(data, _CURSOR_HDR.size, "CURSOR_IMAGE header")
        hx, hy, w, h = _CURSOR_HDR.unpack_from(data)
        if not (1 <= w <= LIMITS.max_cursor_dim
                and 1 <= h <= LIMITS.max_cursor_dim):
            raise FieldRangeError(
                f"CURSOR_IMAGE dimensions {w}x{h} out of range "
                f"(limit {LIMITS.max_cursor_dim})")
        start = _CURSOR_HDR.size
        _exactly(data, start + w * h * 4, "CURSOR_IMAGE")
        return cls(hx, hy, w, h, data[start : start + w * h * 4])


@dataclass(frozen=True)
class RefreshRequestMessage:
    """Client asks the server to resend a screen region.

    Sent after client-side state loss (a suspend/resume, a corrupted
    blit) — the server answers with RAW content for the region, in
    *server* coordinates (the client converts from its viewport).  The
    server clamps the rect to its framebuffer; the wire layer only
    checks the layout.
    """

    rect: Rect

    type_id = _REFRESH

    def encode_payload(self) -> bytes:
        return _RECT_BODY.pack(*self.rect.as_tuple())

    @classmethod
    def decode_payload(cls, data: bytes) -> "RefreshRequestMessage":
        _exactly(data, _RECT_BODY.size, "REFRESH")
        x, y, w, h = _RECT_BODY.unpack_from(data)
        return cls(Rect(x, y, w, h))


@dataclass(frozen=True)
class ZoomRequestMessage:
    """Client chooses the part of the desktop its viewport shows.

    Section 6: from the zoomed-out view of the whole desktop, the user
    zooms in on a section; the server then scales updates from that
    region and pushes a refresh with enough content for the new level.
    An empty request returns to the full-desktop view.
    """

    rect: Rect

    type_id = _ZOOM

    def encode_payload(self) -> bytes:
        return _RECT_BODY.pack(*self.rect.as_tuple())

    @classmethod
    def decode_payload(cls, data: bytes) -> "ZoomRequestMessage":
        _exactly(data, _RECT_BODY.size, "ZOOM")
        x, y, w, h = _RECT_BODY.unpack_from(data)
        return cls(Rect(x, y, w, h))


@dataclass(frozen=True)
class ScreenInitMessage:
    """Server announces the session's framebuffer geometry."""

    width: int
    height: int

    type_id = _SCREEN_INIT

    def encode_payload(self) -> bytes:
        return _SIZE_PAIR.pack(self.width, self.height)

    @classmethod
    def decode_payload(cls, data: bytes) -> "ScreenInitMessage":
        _exactly(data, _SIZE_PAIR.size, "SCREEN_INIT")
        w, h = _SIZE_PAIR.unpack_from(data)
        if not (1 <= w <= LIMITS.max_viewport_dim
                and 1 <= h <= LIMITS.max_viewport_dim):
            raise FieldRangeError(
                f"SCREEN_INIT geometry {w}x{h} out of range")
        return cls(w, h)


@dataclass(frozen=True)
class CheckedFrame:
    """An integrity-checked wrapper around one framed message.

    Resilient sessions wrap every server-to-client message in a CHECKED
    frame carrying a CRC-32 of the body and a per-session sequence
    number.  The checksum turns wire corruption into a typed
    :class:`ChecksumError` (triggering resync, not a crash); the
    sequence number lets the client ack progress and skip duplicates
    replayed after a reconnect.  Negotiation is implicit: only sessions
    accepted through the resilience plane emit CHECKED frames, and the
    parser handles wrapped and bare streams alike — old streams still
    parse unchanged.
    """

    seq: int
    message: "Message"

    type_id = _CHECKED

    def encode_payload(self) -> bytes:
        body = _U32.pack(self.seq) + encode_message(self.message)
        return _U32.pack(zlib.crc32(body) & 0xFFFFFFFF) + body

    @classmethod
    def decode_payload(cls, data: bytes) -> "CheckedFrame":
        if len(data) < 2 * _U32.size + _FRAME.size:
            raise TruncatedPayloadError(
                f"CHECKED frame of {len(data)} bytes cannot hold its "
                f"checksum, sequence and an inner frame")
        (crc,) = _U32.unpack_from(data)
        body = data[_U32.size:]
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            raise ChecksumError(
                f"CHECKED frame failed CRC over {len(body)} bytes")
        # Reject nesting before recursing: a stream of CHECKED-in-
        # CHECKED wrappers costs 13 bytes per level, so a single large
        # frame could otherwise drive the decoder thousands of stack
        # frames deep and surface as RecursionError, not ProtocolError.
        if body[_U32.size] == _CHECKED:
            raise FieldRangeError("CHECKED frames may not nest")
        (seq,) = _U32.unpack_from(body)
        inner = parse_messages(body[_U32.size:])
        if len(inner) != 1:
            raise ProtocolError(
                f"CHECKED frame wraps {len(inner)} messages, expected 1")
        return cls(seq, inner[0])


@dataclass(frozen=True)
class HeartbeatMessage:
    """Periodic liveness beacon carrying a cumulative ack.

    ``last_seq`` is the highest CHECKED sequence number the sender has
    applied (0 when none); the server uses it to prune its replay log.
    ``time`` is the sender's clock, for diagnostics.
    """

    last_seq: int
    time: float

    type_id = _HEARTBEAT

    def encode_payload(self) -> bytes:
        return _HEARTBEAT_BODY.pack(self.last_seq, self.time)

    @classmethod
    def decode_payload(cls, data: bytes) -> "HeartbeatMessage":
        _exactly(data, _HEARTBEAT_BODY.size, "HEARTBEAT")
        last_seq, t = _HEARTBEAT_BODY.unpack_from(data)
        return cls(last_seq, _finite(t, "HEARTBEAT time"))


@dataclass(frozen=True)
class ReconnectRequestMessage:
    """First message on a dialled connection to the resilience plane.

    ``token`` identifies the session to resume (0 requests a fresh
    session); ``last_seq`` is the highest CHECKED sequence the client
    applied, from which the server picks the resync starting point.
    """

    token: int
    last_seq: int

    type_id = _RECONNECT_REQ

    def encode_payload(self) -> bytes:
        return _RECONNECT_BODY.pack(self.token, self.last_seq)

    @classmethod
    def decode_payload(cls, data: bytes) -> "ReconnectRequestMessage":
        _exactly(data, _RECONNECT_BODY.size, "RECONNECT_REQ")
        token, last_seq = _RECONNECT_BODY.unpack_from(data)
        return cls(token, last_seq)


@dataclass(frozen=True)
class ReconnectAcceptMessage:
    """The plane accepts an attach/reconnect; sent in the clear before
    the (possibly re-keyed) session stream starts."""

    token: int
    resync: int  # RESYNC_FRESH / RESYNC_REPLAY / RESYNC_SNAPSHOT

    type_id = _RECONNECT_ACCEPT

    def encode_payload(self) -> bytes:
        return _ACCEPT_BODY.pack(self.token, self.resync)

    @classmethod
    def decode_payload(cls, data: bytes) -> "ReconnectAcceptMessage":
        _exactly(data, _ACCEPT_BODY.size, "RECONNECT_ACCEPT")
        token, resync = _ACCEPT_BODY.unpack_from(data)
        if resync not in (RESYNC_FRESH, RESYNC_REPLAY, RESYNC_SNAPSHOT):
            raise FieldRangeError(f"unknown resync mode {resync}")
        return cls(token, resync)


@dataclass(frozen=True)
class ReconnectDeniedMessage:
    """Backoff push-back: try again no sooner than ``retry_after``."""

    retry_after: float

    type_id = _RECONNECT_DENIED

    def encode_payload(self) -> bytes:
        return _DENIED_BODY.pack(self.retry_after)

    @classmethod
    def decode_payload(cls, data: bytes) -> "ReconnectDeniedMessage":
        _exactly(data, _DENIED_BODY.size, "RECONNECT_DENIED")
        (retry_after,) = _DENIED_BODY.unpack_from(data)
        _finite(retry_after, "RECONNECT_DENIED retry_after")
        if not 0.0 <= retry_after <= LIMITS.max_retry_after:
            raise FieldRangeError(
                f"retry_after {retry_after} outside "
                f"[0, {LIMITS.max_retry_after}]")
        return cls(retry_after)


@dataclass(frozen=True)
class AttachDeniedMessage:
    """Typed admission push-back on the plain attach path.

    The server's governor rejects an ``attach_client`` past the global
    admission budget (or evicts a session for exhausting its own) by
    writing this message before releasing the connection, so a
    well-behaved client learns *why* it was turned away and when a
    retry is worth the dial instead of diagnosing a silent hangup.
    """

    reason: int  # DENY_SERVER_FULL / DENY_SESSION_BUDGET / DENY_QUARANTINED
    retry_after: float

    type_id = _ATTACH_DENIED

    def encode_payload(self) -> bytes:
        return _ATTACH_DENIED_BODY.pack(self.reason, self.retry_after)

    @classmethod
    def decode_payload(cls, data: bytes) -> "AttachDeniedMessage":
        _exactly(data, _ATTACH_DENIED_BODY.size, "ATTACH_DENIED")
        reason, retry_after = _ATTACH_DENIED_BODY.unpack_from(data)
        if reason not in _DENY_REASONS:
            raise FieldRangeError(f"unknown denial reason {reason}")
        _finite(retry_after, "ATTACH_DENIED retry_after")
        if not 0.0 <= retry_after <= LIMITS.max_retry_after:
            raise FieldRangeError(
                f"retry_after {retry_after} outside "
                f"[0, {LIMITS.max_retry_after}]")
        return cls(reason, retry_after)


@dataclass(frozen=True)
class SessionTransferMessage:
    """A frozen session crossing the shard fabric.

    ``state`` is the serialized :class:`~repro.core.session_unit.
    FrozenSession` surface — opaque at this layer so the wire format
    needs no knowledge of the server core.  ``token`` rides alongside
    in the clear so the fabric can route and account a transfer without
    decoding the blob.  Fabric-internal: the uplink and downlink
    parsers both reject it.
    """

    token: int
    state: bytes

    type_id = _SESSION_TRANSFER

    def encode_payload(self) -> bytes:
        return _U32.pack(self.token) + self.state

    @classmethod
    def decode_payload(cls, data: bytes) -> "SessionTransferMessage":
        _need(data, _U32.size, "SESSION_TRANSFER header")
        if len(data) - _U32.size > LIMITS.max_transfer_bytes:
            raise FrameTooLargeError(
                f"SESSION_TRANSFER state of {len(data) - _U32.size} bytes "
                f"exceeds {LIMITS.max_transfer_bytes}")
        (token,) = _U32.unpack_from(data)
        return cls(token, data[_U32.size:])


def _shard_in_range(shard: int, what: str) -> int:
    if shard > LIMITS.max_shard_id:
        raise FieldRangeError(
            f"{what} names shard {shard}, ceiling is "
            f"{LIMITS.max_shard_id}")
    return shard


@dataclass(frozen=True)
class MigrateBeginMessage:
    """Coordinator tells the owning shard to freeze and hand off a
    session: the start-of-migration mark on the fabric."""

    token: int
    target_shard: int

    type_id = _MIGRATE_BEGIN

    def encode_payload(self) -> bytes:
        return _MIGRATE_BODY.pack(self.token, self.target_shard)

    @classmethod
    def decode_payload(cls, data: bytes) -> "MigrateBeginMessage":
        _exactly(data, _MIGRATE_BODY.size, "MIGRATE_BEGIN")
        token, shard = _MIGRATE_BODY.unpack_from(data)
        return cls(token, _shard_in_range(shard, "MIGRATE_BEGIN"))


@dataclass(frozen=True)
class MigrateCompleteMessage:
    """Target shard acknowledges it thawed the session and owns the
    token; the coordinator flips its routing on receipt."""

    token: int
    shard: int

    type_id = _MIGRATE_COMPLETE

    def encode_payload(self) -> bytes:
        return _MIGRATE_BODY.pack(self.token, self.shard)

    @classmethod
    def decode_payload(cls, data: bytes) -> "MigrateCompleteMessage":
        _exactly(data, _MIGRATE_BODY.size, "MIGRATE_COMPLETE")
        token, shard = _MIGRATE_BODY.unpack_from(data)
        return cls(token, _shard_in_range(shard, "MIGRATE_COMPLETE"))


@dataclass(frozen=True)
class ShardAdmissionReportMessage:
    """A shard reports its admission posture upward.

    The fields are the shard governor's own gauges — live session
    count, total buffered display bytes, and whether a fresh attach
    would currently be admitted — which is exactly what the coordinator
    needs for placement and overflow routing.
    """

    shard: int
    sessions: int
    queue_bytes: int
    admitting: bool

    type_id = _SHARD_ADMISSION

    def encode_payload(self) -> bytes:
        return _ADMISSION_BODY.pack(self.shard, self.sessions,
                                    self.queue_bytes,
                                    1 if self.admitting else 0)

    @classmethod
    def decode_payload(cls, data: bytes) -> "ShardAdmissionReportMessage":
        _exactly(data, _ADMISSION_BODY.size, "SHARD_ADMISSION")
        shard, sessions, queue_bytes, admitting = \
            _ADMISSION_BODY.unpack_from(data)
        if admitting > 1:
            raise FieldRangeError(
                f"SHARD_ADMISSION admitting flag {admitting} is not 0/1")
        return cls(_shard_in_range(shard, "SHARD_ADMISSION"), sessions,
                   queue_bytes, bool(admitting))


@dataclass(frozen=True)
class SubscribeMessage:
    """Client asks to join the broadcast fan-out plane.

    ``mode`` is :data:`SUBSCRIBE_MIRROR` (receive the whole desktop,
    resampled into the session's viewport) or :data:`SUBSCRIBE_TILE`
    (own tile ``index`` of a ``cols x rows`` partition of the virtual
    display wall; the server answers with TILE_ASSIGN plus the usual
    geometry handshake).  Mirror subscriptions carry zeroed grid
    fields; tile grids are bounded by ``LIMITS.max_wall_tiles`` so a
    hostile client cannot demand a degenerate one-pixel carving.
    """

    mode: int
    cols: int = 0
    rows: int = 0
    index: int = 0

    type_id = _SUBSCRIBE

    def encode_payload(self) -> bytes:
        return _SUBSCRIBE_BODY.pack(self.mode, self.cols, self.rows,
                                    self.index)

    @classmethod
    def decode_payload(cls, data: bytes) -> "SubscribeMessage":
        _exactly(data, _SUBSCRIBE_BODY.size, "SUBSCRIBE")
        mode, cols, rows, index = _SUBSCRIBE_BODY.unpack_from(data)
        if mode not in (SUBSCRIBE_MIRROR, SUBSCRIBE_TILE):
            raise FieldRangeError(f"SUBSCRIBE mode {mode} is unknown")
        if mode == SUBSCRIBE_MIRROR:
            if cols or rows or index:
                raise FieldRangeError(
                    "SUBSCRIBE mirror mode carries a tile grid "
                    f"({cols}x{rows} index {index})")
        else:
            if cols < 1 or rows < 1:
                raise FieldRangeError(
                    f"SUBSCRIBE tile grid {cols}x{rows} is empty")
            if cols * rows > LIMITS.max_wall_tiles:
                raise FieldRangeError(
                    f"SUBSCRIBE tile grid {cols}x{rows} exceeds "
                    f"{LIMITS.max_wall_tiles} tiles")
            if index >= cols * rows:
                raise FieldRangeError(
                    f"SUBSCRIBE tile index {index} outside "
                    f"{cols}x{rows} grid")
        return cls(mode, cols, rows, index)


@dataclass(frozen=True)
class TileAssignMessage:
    """Server assigns a tile-wall subscriber its sub-rectangle.

    ``wall_w``/``wall_h`` are the virtual wall's full extent (the
    server framebuffer) and ``rect`` the subscriber's tile in wall
    coordinates — everything a client needs to place its panel and map
    local pixels back onto the wall.
    """

    wall_w: int
    wall_h: int
    rect: Rect

    type_id = _TILE_ASSIGN

    def encode_payload(self) -> bytes:
        return _TILE_ASSIGN_BODY.pack(self.wall_w, self.wall_h,
                                      *self.rect.as_tuple())

    @classmethod
    def decode_payload(cls, data: bytes) -> "TileAssignMessage":
        _exactly(data, _TILE_ASSIGN_BODY.size, "TILE_ASSIGN")
        wall_w, wall_h, x, y, w, h = _TILE_ASSIGN_BODY.unpack_from(data)
        if not (1 <= wall_w <= LIMITS.max_viewport_dim
                and 1 <= wall_h <= LIMITS.max_viewport_dim):
            raise FieldRangeError(
                f"TILE_ASSIGN wall {wall_w}x{wall_h} out of range")
        if w < 1 or h < 1:
            raise FieldRangeError("TILE_ASSIGN tile is empty")
        if x + w > wall_w or y + h > wall_h:
            raise FieldRangeError(
                f"TILE_ASSIGN tile {x},{y} {w}x{h} leaves the "
                f"{wall_w}x{wall_h} wall")
        return cls(wall_w, wall_h, Rect(x, y, w, h))


@dataclass(frozen=True)
class VideoQualityMessage:
    """Server announces a video stream's negotiated quality rung.

    Sent only when the QoS ladder moves (a healthy link never sees
    one), alongside VSETUP for streams opened while degraded.  The
    descriptor is everything the client needs to interpret what it
    will receive: ``fps_divisor`` (only every Nth source frame is
    shipped), ``scale_shift`` (frames arrive at source dimensions
    right-shifted this much and are scaled back by the overlay
    hardware), and ``qstep`` (the chroma/quantise squeeze applied at
    the bottom rung; 0 means lossless YV12).
    """

    stream_id: int
    rung: int
    fps_divisor: int = 1
    scale_shift: int = 0
    qstep: int = 0

    type_id = _VIDEO_QUALITY

    def encode_payload(self) -> bytes:
        return _VIDEO_QUALITY_BODY.pack(self.stream_id, self.rung,
                                        self.fps_divisor,
                                        self.scale_shift, self.qstep)

    @classmethod
    def decode_payload(cls, data: bytes) -> "VideoQualityMessage":
        _exactly(data, _VIDEO_QUALITY_BODY.size, "VIDEO_QUALITY")
        sid, rung, fps_div, shift, qstep = \
            _VIDEO_QUALITY_BODY.unpack_from(data)
        if rung > LIMITS.max_qos_rung:
            raise FieldRangeError(
                f"VIDEO_QUALITY rung {rung} exceeds "
                f"{LIMITS.max_qos_rung}")
        if not 1 <= fps_div <= LIMITS.max_fps_divisor:
            raise FieldRangeError(
                f"VIDEO_QUALITY fps divisor {fps_div} outside "
                f"[1, {LIMITS.max_fps_divisor}]")
        if shift > LIMITS.max_scale_shift:
            raise FieldRangeError(
                f"VIDEO_QUALITY scale shift {shift} exceeds "
                f"{LIMITS.max_scale_shift}")
        if qstep > LIMITS.max_qos_qstep:
            raise FieldRangeError(
                f"VIDEO_QUALITY qstep {qstep} exceeds "
                f"{LIMITS.max_qos_qstep}")
        return cls(sid, rung, fps_div, shift, qstep)


@dataclass(frozen=True)
class QosReportMessage:
    """Client feeds its delivered A/V quality back to the server.

    Carries the Section 8.2 measures computed client-side over one
    stream's arrival records: frames actually presented, the playback
    and audio quality fractions, and the A/V sync skew.  The QoS plane
    uses them to confirm a recovery took (the byte counters alone say
    the link drained, not that the client kept up).
    """

    stream_id: int
    frames_received: int
    playback_quality: float = 1.0
    audio_quality: float = 1.0
    av_skew: float = 0.0

    type_id = _QOS_REPORT

    def encode_payload(self) -> bytes:
        return _QOS_REPORT_BODY.pack(self.stream_id, self.frames_received,
                                     self.playback_quality,
                                     self.audio_quality, self.av_skew)

    @classmethod
    def decode_payload(cls, data: bytes) -> "QosReportMessage":
        _exactly(data, _QOS_REPORT_BODY.size, "QOS_REPORT")
        sid, frames, playback, audio, skew = \
            _QOS_REPORT_BODY.unpack_from(data)
        for name, quality in (("playback", playback), ("audio", audio)):
            _finite(quality, f"QOS_REPORT {name} quality")
            if not 0.0 <= quality <= 1.0:
                raise FieldRangeError(
                    f"QOS_REPORT {name} quality {quality} outside [0, 1]")
        _finite(skew, "QOS_REPORT av_skew")
        if not 0.0 <= skew <= LIMITS.max_av_skew:
            raise FieldRangeError(
                f"QOS_REPORT av_skew {skew} outside "
                f"[0, {LIMITS.max_av_skew}]")
        return cls(sid, frames, playback, audio, skew)


_CONTROL_TYPES = {
    cls.type_id: cls
    for cls in (VideoSetupMessage, VideoMoveMessage, VideoTeardownMessage,
                AudioChunkMessage, InputMessage, ResizeMessage,
                ScreenInitMessage, CursorImageMessage,
                RefreshRequestMessage, ZoomRequestMessage,
                CheckedFrame, HeartbeatMessage, ReconnectRequestMessage,
                ReconnectAcceptMessage, ReconnectDeniedMessage,
                AttachDeniedMessage, SessionTransferMessage,
                MigrateBeginMessage, MigrateCompleteMessage,
                ShardAdmissionReportMessage, SubscribeMessage,
                TileAssignMessage, VideoQualityMessage, QosReportMessage)
}

Message = Union[Command, VideoSetupMessage, VideoMoveMessage,
                VideoTeardownMessage, AudioChunkMessage, InputMessage,
                ResizeMessage, ScreenInitMessage, CheckedFrame,
                HeartbeatMessage, ReconnectRequestMessage,
                ReconnectAcceptMessage, ReconnectDeniedMessage,
                AttachDeniedMessage, SessionTransferMessage,
                MigrateBeginMessage, MigrateCompleteMessage,
                ShardAdmissionReportMessage, SubscribeMessage,
                TileAssignMessage, VideoQualityMessage, QosReportMessage]


def encode_message(msg: Message) -> bytes:
    """Frame one message (display command or control message)."""
    if isinstance(msg, Command):
        body = msg.encode()
        # Command.encode already leads with its type byte; reuse it.
        return frame_message(body[0], body[1:])
    return frame_message(msg.type_id, msg.encode_payload())


def frame_message(type_id: int, payload: bytes) -> bytes:
    return _FRAME.pack(type_id, len(payload)) + payload


def wrap_checked(framed: bytes, seq: int) -> bytes:
    """Wrap one already-framed message in a CHECKED frame.

    Byte-identical to ``encode_message(CheckedFrame(seq, msg))`` when
    *framed* is ``encode_message(msg)``, but avoids re-encoding on the
    send path where the framed bytes already exist.
    """
    body = _U32.pack(seq) + framed
    return frame_message(
        _CHECKED, _U32.pack(zlib.crc32(body) & 0xFFFFFFFF) + body)


def _decode_frame(type_id: int, payload: bytes):
    """Decode one frame's payload, upholding the ProtocolError contract.

    Control messages enforce it natively through their hardened
    ``decode_payload``; the display-command decoders predate the typed
    error surface and can still fail with ``struct.error`` on a short
    buffer, ``zlib.error`` on a corrupt DEFLATE stream, or a numpy
    ``ValueError`` on an impossible shape — all of which become
    :class:`ProtocolError` here, so receivers have exactly one
    exception family to guard against.
    """
    if type_id in _CONTROL_TYPES:
        return _CONTROL_TYPES[type_id].decode_payload(payload)
    try:
        # Display command: restore the leading type byte.
        return decode_command(bytes([type_id]) + payload)
    except ProtocolError:
        raise
    except (ValueError, KeyError, IndexError, OverflowError,
            struct.error, zlib.error) as exc:
        raise ProtocolError(
            f"malformed display command (type {type_id}): {exc}") from exc


def parse_messages(data: bytes):
    """Parse a byte stream into messages; raises ProtocolError on any
    truncation or malformed payload."""
    out = []
    offset = 0
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            raise TruncatedPayloadError("truncated message frame")
        type_id, length = _FRAME.unpack_from(data, offset)
        offset += _FRAME.size
        if offset + length > len(data):
            raise TruncatedPayloadError("truncated message payload")
        payload = data[offset : offset + length]
        offset += length
        out.append(_decode_frame(type_id, payload))
    return out


class StreamParser:
    """Incremental message parser over an arbitrary byte-chunk stream.

    Network delivery hands the client data in transport-sized pieces
    that rarely align with message boundaries; the parser buffers the
    tail until a frame completes.

    ``max_frame`` bounds the length field a frame may declare: a
    corrupted header could otherwise announce a multi-gigabyte payload
    and silently stall the stream forever while the parser waits for
    bytes that will never come.  It defaults to the typed limit in
    :mod:`repro.protocol.limits`; pass ``None`` only for trusted
    in-process streams.  ``max_pending`` additionally bounds the bytes
    buffered while waiting for a frame to complete, and ``allowed``
    restricts the acceptable type ids (the server's uplink parser uses
    it to reject server-to-client message types a client has no
    business sending).
    """

    def __init__(self, max_frame: Optional[int] = LIMITS.max_frame_bytes,
                 max_pending: Optional[int] = None,
                 allowed: Optional[Collection[int]] = None) -> None:
        self._buffer = bytearray()
        self.max_frame = max_frame
        self.max_pending = max_pending
        self.allowed = frozenset(allowed) if allowed is not None else None

    def feed(self, chunk: bytes):
        """Absorb a chunk and return the messages completed by it."""
        self._buffer.extend(chunk)
        out = []
        offset = 0
        try:
            while True:
                if offset + _FRAME.size > len(self._buffer):
                    break
                type_id, length = _FRAME.unpack_from(self._buffer, offset)
                if self.max_frame is not None and length > self.max_frame:
                    raise FrameTooLargeError(
                        f"frame declares {length} byte payload, cap is "
                        f"{self.max_frame} — corrupted length field")
                if self.allowed is not None and type_id not in self.allowed:
                    raise FieldRangeError(
                        f"message type {type_id} is not acceptable on "
                        f"this stream direction")
                end = offset + _FRAME.size + length
                if end > len(self._buffer):
                    break
                payload = bytes(self._buffer[offset + _FRAME.size : end])
                out.append(_decode_frame(type_id, payload))
                offset = end
        finally:
            # Consume what parsed even when a later frame raises, so a
            # resilient receiver that resets on ProtocolError does not
            # re-parse (and re-apply) the messages that preceded it.
            del self._buffer[:offset]
        if self.max_pending is not None and \
                len(self._buffer) > self.max_pending:
            raise FrameTooLargeError(
                f"{len(self._buffer)} bytes buffered awaiting a frame, "
                f"cap is {self.max_pending}")
        return out

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of their frame."""
        return len(self._buffer)
