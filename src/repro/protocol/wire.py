"""Wire format: message framing for the THINC protocol.

Every protocol message is framed as::

    +------+----------+-----------------+
    | type | length   | payload         |
    | u8   | u32 (BE) | `length` bytes  |
    +------+----------+-----------------+

Display commands (``repro.protocol.commands``) are one message family;
this module adds the stream-control and session messages: video stream
lifecycle (Section 4.2), audio chunks with server-side timestamps,
client input events, the client's viewport-size report that drives
server-side scaling (Section 6), and the initial screen geometry.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Optional, Union

from ..region import Rect
from .commands import Command, decode_command

__all__ = [
    "StreamParser",
    "CursorImageMessage",
    "RefreshRequestMessage",
    "ZoomRequestMessage",
    "VideoSetupMessage",
    "VideoMoveMessage",
    "VideoTeardownMessage",
    "AudioChunkMessage",
    "InputMessage",
    "ResizeMessage",
    "ScreenInitMessage",
    "CheckedFrame",
    "HeartbeatMessage",
    "ReconnectRequestMessage",
    "ReconnectAcceptMessage",
    "ReconnectDeniedMessage",
    "ProtocolError",
    "ChecksumError",
    "Message",
    "FRAME_OVERHEAD",
    "CHECKED_OVERHEAD",
    "RESYNC_FRESH",
    "RESYNC_REPLAY",
    "RESYNC_SNAPSHOT",
    "frame_message",
    "parse_messages",
    "encode_message",
    "wrap_checked",
]


class ProtocolError(ValueError):
    """A malformed or inconsistent protocol stream.

    Subclasses :class:`ValueError` so generic stream-robustness code
    (and the fuzz suite) treats it like any other parse failure, while
    resilience-aware receivers can catch it specifically and trigger a
    resync instead of crashing.
    """


class ChecksumError(ProtocolError):
    """A CHECKED frame whose payload fails its CRC — corruption on the
    wire reached the parser."""


_FRAME = struct.Struct(">BI")

# Message payload formats, precompiled once at import so encode/decode
# never re-parse a format string on the hot path.
_VSETUP_HDR = struct.Struct(">HBHHHHHH")
_VMOVE_BODY = struct.Struct(">HHHHH")
_STREAM_ID = struct.Struct(">H")
_TIMESTAMP = struct.Struct(">d")
_INPUT_BODY = struct.Struct(">BHHd")
_SIZE_PAIR = struct.Struct(">HH")
_RECT_BODY = struct.Struct(">HHHH")
_CURSOR_HDR = struct.Struct(">HHHH")

# Bytes the frame header adds around every message payload.  Exposed so
# flush-time size arithmetic (repro.core.delivery) can never drift from
# the actual framing format.
FRAME_OVERHEAD = _FRAME.size

# Message type ids 1..7 belong to display commands (commands.py).
_VSETUP, _VMOVE, _VTEARDOWN = 16, 17, 18
_AUDIO = 19
_INPUT = 20
_RESIZE = 21
_SCREEN_INIT = 22
_CURSOR_IMAGE = 23
_REFRESH = 24
_ZOOM = 25
_CHECKED = 26
_HEARTBEAT = 27
_RECONNECT_REQ = 28
_RECONNECT_ACCEPT = 29
_RECONNECT_DENIED = 30

_INPUT_KINDS = ("mouse-move", "mouse-click", "key")

# CHECKED frame payload prefix and resilience message bodies.
_U32 = struct.Struct(">I")
_HEARTBEAT_BODY = struct.Struct(">Id")
_RECONNECT_BODY = struct.Struct(">II")
_ACCEPT_BODY = struct.Struct(">IB")
_DENIED_BODY = struct.Struct(">d")

# Extra bytes a CHECKED wrapper adds around an already-framed message:
# its own [type u8][len u32] header plus crc32[u32] and seq[u32].
CHECKED_OVERHEAD = _FRAME.size + 2 * _U32.size

# Resync kinds carried by ReconnectAcceptMessage.
RESYNC_FRESH = 0  # brand-new session: full state follows anyway
RESYNC_REPLAY = 1  # unacked frames replayed from the session log
RESYNC_SNAPSHOT = 2  # log/queue was dropped: region-chunked RAW refresh


@dataclass(frozen=True)
class VideoSetupMessage:
    """Open a video stream on the client (format + geometry)."""

    stream_id: int
    pixel_format: str
    src_width: int
    src_height: int
    dst_rect: Rect

    type_id = _VSETUP

    def encode_payload(self) -> bytes:
        fmt = self.pixel_format.encode("ascii")
        return _VSETUP_HDR.pack(self.stream_id, len(fmt),
                                self.src_width, self.src_height,
                                *self.dst_rect.as_tuple()) + fmt

    @classmethod
    def decode_payload(cls, data: bytes) -> "VideoSetupMessage":
        sid, fmt_len, sw, sh, x, y, w, h = _VSETUP_HDR.unpack_from(data)
        start = _VSETUP_HDR.size
        fmt = data[start : start + fmt_len].decode("ascii")
        return cls(sid, fmt, sw, sh, Rect(x, y, w, h))


@dataclass(frozen=True)
class VideoMoveMessage:
    """Move/resize a stream's output window."""

    stream_id: int
    dst_rect: Rect

    type_id = _VMOVE

    def encode_payload(self) -> bytes:
        return _VMOVE_BODY.pack(self.stream_id,
                                *self.dst_rect.as_tuple())

    @classmethod
    def decode_payload(cls, data: bytes) -> "VideoMoveMessage":
        sid, x, y, w, h = _VMOVE_BODY.unpack_from(data)
        return cls(sid, Rect(x, y, w, h))


@dataclass(frozen=True)
class VideoTeardownMessage:
    """Close a video stream."""

    stream_id: int

    type_id = _VTEARDOWN

    def encode_payload(self) -> bytes:
        return _STREAM_ID.pack(self.stream_id)

    @classmethod
    def decode_payload(cls, data: bytes) -> "VideoTeardownMessage":
        (sid,) = _STREAM_ID.unpack_from(data)
        return cls(sid)


@dataclass(frozen=True)
class AudioChunkMessage:
    """A block of audio samples stamped with server time (Section 4.2)."""

    timestamp: float
    samples: bytes

    type_id = _AUDIO

    def encode_payload(self) -> bytes:
        return _TIMESTAMP.pack(self.timestamp) + self.samples

    @classmethod
    def decode_payload(cls, data: bytes) -> "AudioChunkMessage":
        (ts,) = _TIMESTAMP.unpack_from(data)
        return cls(ts, data[_TIMESTAMP.size:])


@dataclass(frozen=True)
class InputMessage:
    """Client-to-server user input."""

    kind: str
    x: int
    y: int
    time: float

    type_id = _INPUT

    def encode_payload(self) -> bytes:
        kind_id = _INPUT_KINDS.index(self.kind)
        return _INPUT_BODY.pack(kind_id, self.x, self.y, self.time)

    @classmethod
    def decode_payload(cls, data: bytes) -> "InputMessage":
        kind_id, x, y, t = _INPUT_BODY.unpack_from(data)
        if kind_id >= len(_INPUT_KINDS):
            raise ValueError(f"unknown input kind id {kind_id}")
        return cls(_INPUT_KINDS[kind_id], x, y, t)


@dataclass(frozen=True)
class ResizeMessage:
    """Client reports its viewport size; enables server-side scaling."""

    width: int
    height: int

    type_id = _RESIZE

    def encode_payload(self) -> bytes:
        return _SIZE_PAIR.pack(self.width, self.height)

    @classmethod
    def decode_payload(cls, data: bytes) -> "ResizeMessage":
        w, h = _SIZE_PAIR.unpack_from(data)
        return cls(w, h)


@dataclass(frozen=True)
class CursorImageMessage:
    """Server pushes a new cursor shape; the client tracks position
    locally for zero-latency pointer feedback (hardware cursor model).
    """

    hot_x: int
    hot_y: int
    width: int
    height: int
    rgba: bytes  # width*height*4 straight-alpha pixels

    type_id = _CURSOR_IMAGE

    def __post_init__(self):
        if len(self.rgba) != self.width * self.height * 4:
            raise ValueError("cursor pixel payload does not match size")

    def encode_payload(self) -> bytes:
        return _CURSOR_HDR.pack(self.hot_x, self.hot_y, self.width,
                                self.height) + self.rgba

    @classmethod
    def decode_payload(cls, data: bytes) -> "CursorImageMessage":
        hx, hy, w, h = _CURSOR_HDR.unpack_from(data)
        start = _CURSOR_HDR.size
        return cls(hx, hy, w, h, data[start : start + w * h * 4])


@dataclass(frozen=True)
class RefreshRequestMessage:
    """Client asks the server to resend a screen region.

    Sent after client-side state loss (a suspend/resume, a corrupted
    blit) — the server answers with RAW content for the region, in
    *server* coordinates (the client converts from its viewport).
    """

    rect: Rect

    type_id = _REFRESH

    def encode_payload(self) -> bytes:
        return _RECT_BODY.pack(*self.rect.as_tuple())

    @classmethod
    def decode_payload(cls, data: bytes) -> "RefreshRequestMessage":
        x, y, w, h = _RECT_BODY.unpack_from(data)
        return cls(Rect(x, y, w, h))


@dataclass(frozen=True)
class ZoomRequestMessage:
    """Client chooses the part of the desktop its viewport shows.

    Section 6: from the zoomed-out view of the whole desktop, the user
    zooms in on a section; the server then scales updates from that
    region and pushes a refresh with enough content for the new level.
    An empty request returns to the full-desktop view.
    """

    rect: Rect

    type_id = _ZOOM

    def encode_payload(self) -> bytes:
        return _RECT_BODY.pack(*self.rect.as_tuple())

    @classmethod
    def decode_payload(cls, data: bytes) -> "ZoomRequestMessage":
        x, y, w, h = _RECT_BODY.unpack_from(data)
        return cls(Rect(x, y, w, h))


@dataclass(frozen=True)
class ScreenInitMessage:
    """Server announces the session's framebuffer geometry."""

    width: int
    height: int

    type_id = _SCREEN_INIT

    def encode_payload(self) -> bytes:
        return _SIZE_PAIR.pack(self.width, self.height)

    @classmethod
    def decode_payload(cls, data: bytes) -> "ScreenInitMessage":
        w, h = _SIZE_PAIR.unpack_from(data)
        return cls(w, h)


@dataclass(frozen=True)
class CheckedFrame:
    """An integrity-checked wrapper around one framed message.

    Resilient sessions wrap every server-to-client message in a CHECKED
    frame carrying a CRC-32 of the body and a per-session sequence
    number.  The checksum turns wire corruption into a typed
    :class:`ChecksumError` (triggering resync, not a crash); the
    sequence number lets the client ack progress and skip duplicates
    replayed after a reconnect.  Negotiation is implicit: only sessions
    accepted through the resilience plane emit CHECKED frames, and the
    parser handles wrapped and bare streams alike — old streams still
    parse unchanged.
    """

    seq: int
    message: "Message"

    type_id = _CHECKED

    def encode_payload(self) -> bytes:
        body = _U32.pack(self.seq) + encode_message(self.message)
        return _U32.pack(zlib.crc32(body) & 0xFFFFFFFF) + body

    @classmethod
    def decode_payload(cls, data: bytes) -> "CheckedFrame":
        if len(data) < 2 * _U32.size:
            raise ProtocolError("truncated CHECKED frame")
        (crc,) = _U32.unpack_from(data)
        body = data[_U32.size:]
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            raise ChecksumError(
                f"CHECKED frame failed CRC over {len(body)} bytes")
        (seq,) = _U32.unpack_from(body)
        inner = parse_messages(body[_U32.size:])
        if len(inner) != 1:
            raise ProtocolError(
                f"CHECKED frame wraps {len(inner)} messages, expected 1")
        return cls(seq, inner[0])


@dataclass(frozen=True)
class HeartbeatMessage:
    """Periodic liveness beacon carrying a cumulative ack.

    ``last_seq`` is the highest CHECKED sequence number the sender has
    applied (0 when none); the server uses it to prune its replay log.
    ``time`` is the sender's clock, for diagnostics.
    """

    last_seq: int
    time: float

    type_id = _HEARTBEAT

    def encode_payload(self) -> bytes:
        return _HEARTBEAT_BODY.pack(self.last_seq, self.time)

    @classmethod
    def decode_payload(cls, data: bytes) -> "HeartbeatMessage":
        last_seq, t = _HEARTBEAT_BODY.unpack_from(data)
        return cls(last_seq, t)


@dataclass(frozen=True)
class ReconnectRequestMessage:
    """First message on a dialled connection to the resilience plane.

    ``token`` identifies the session to resume (0 requests a fresh
    session); ``last_seq`` is the highest CHECKED sequence the client
    applied, from which the server picks the resync starting point.
    """

    token: int
    last_seq: int

    type_id = _RECONNECT_REQ

    def encode_payload(self) -> bytes:
        return _RECONNECT_BODY.pack(self.token, self.last_seq)

    @classmethod
    def decode_payload(cls, data: bytes) -> "ReconnectRequestMessage":
        token, last_seq = _RECONNECT_BODY.unpack_from(data)
        return cls(token, last_seq)


@dataclass(frozen=True)
class ReconnectAcceptMessage:
    """The plane accepts an attach/reconnect; sent in the clear before
    the (possibly re-keyed) session stream starts."""

    token: int
    resync: int  # RESYNC_FRESH / RESYNC_REPLAY / RESYNC_SNAPSHOT

    type_id = _RECONNECT_ACCEPT

    def encode_payload(self) -> bytes:
        return _ACCEPT_BODY.pack(self.token, self.resync)

    @classmethod
    def decode_payload(cls, data: bytes) -> "ReconnectAcceptMessage":
        token, resync = _ACCEPT_BODY.unpack_from(data)
        return cls(token, resync)


@dataclass(frozen=True)
class ReconnectDeniedMessage:
    """Backoff push-back: try again no sooner than ``retry_after``."""

    retry_after: float

    type_id = _RECONNECT_DENIED

    def encode_payload(self) -> bytes:
        return _DENIED_BODY.pack(self.retry_after)

    @classmethod
    def decode_payload(cls, data: bytes) -> "ReconnectDeniedMessage":
        (retry_after,) = _DENIED_BODY.unpack_from(data)
        return cls(retry_after)


_CONTROL_TYPES = {
    cls.type_id: cls
    for cls in (VideoSetupMessage, VideoMoveMessage, VideoTeardownMessage,
                AudioChunkMessage, InputMessage, ResizeMessage,
                ScreenInitMessage, CursorImageMessage,
                RefreshRequestMessage, ZoomRequestMessage,
                CheckedFrame, HeartbeatMessage, ReconnectRequestMessage,
                ReconnectAcceptMessage, ReconnectDeniedMessage)
}

Message = Union[Command, VideoSetupMessage, VideoMoveMessage,
                VideoTeardownMessage, AudioChunkMessage, InputMessage,
                ResizeMessage, ScreenInitMessage, CheckedFrame,
                HeartbeatMessage, ReconnectRequestMessage,
                ReconnectAcceptMessage, ReconnectDeniedMessage]


def encode_message(msg: Message) -> bytes:
    """Frame one message (display command or control message)."""
    if isinstance(msg, Command):
        body = msg.encode()
        # Command.encode already leads with its type byte; reuse it.
        return frame_message(body[0], body[1:])
    return frame_message(msg.type_id, msg.encode_payload())


def frame_message(type_id: int, payload: bytes) -> bytes:
    return _FRAME.pack(type_id, len(payload)) + payload


def wrap_checked(framed: bytes, seq: int) -> bytes:
    """Wrap one already-framed message in a CHECKED frame.

    Byte-identical to ``encode_message(CheckedFrame(seq, msg))`` when
    *framed* is ``encode_message(msg)``, but avoids re-encoding on the
    send path where the framed bytes already exist.
    """
    body = _U32.pack(seq) + framed
    return frame_message(
        _CHECKED, _U32.pack(zlib.crc32(body) & 0xFFFFFFFF) + body)


def parse_messages(data: bytes):
    """Parse a byte stream into messages; raises on truncation."""
    out = []
    offset = 0
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            raise ValueError("truncated message frame")
        type_id, length = _FRAME.unpack_from(data, offset)
        offset += _FRAME.size
        if offset + length > len(data):
            raise ValueError("truncated message payload")
        payload = data[offset : offset + length]
        offset += length
        if type_id in _CONTROL_TYPES:
            out.append(_CONTROL_TYPES[type_id].decode_payload(payload))
        else:
            # Display command: restore the leading type byte.
            out.append(decode_command(bytes([type_id]) + payload))
    return out


class StreamParser:
    """Incremental message parser over an arbitrary byte-chunk stream.

    Network delivery hands the client data in transport-sized pieces
    that rarely align with message boundaries; the parser buffers the
    tail until a frame completes.

    ``max_frame`` bounds the length field a frame may declare: a
    corrupted header could otherwise announce a multi-gigabyte payload
    and silently stall the stream forever while the parser waits for
    bytes that will never come.  Receivers that expect corruption (the
    resilient client) set it; the default keeps legacy behaviour.
    """

    def __init__(self, max_frame: Optional[int] = None) -> None:
        self._buffer = bytearray()
        self.max_frame = max_frame

    def feed(self, chunk: bytes):
        """Absorb a chunk and return the messages completed by it."""
        self._buffer.extend(chunk)
        out = []
        offset = 0
        while True:
            if offset + _FRAME.size > len(self._buffer):
                break
            type_id, length = _FRAME.unpack_from(self._buffer, offset)
            if self.max_frame is not None and length > self.max_frame:
                raise ProtocolError(
                    f"frame declares {length} byte payload, cap is "
                    f"{self.max_frame} — corrupted length field")
            end = offset + _FRAME.size + length
            if end > len(self._buffer):
                break
            payload = bytes(self._buffer[offset + _FRAME.size : end])
            if type_id in _CONTROL_TYPES:
                out.append(_CONTROL_TYPES[type_id].decode_payload(payload))
            else:
                out.append(decode_command(bytes([type_id]) + payload))
            offset = end
        del self._buffer[:offset]
        return out

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of their frame."""
        return len(self._buffer)
