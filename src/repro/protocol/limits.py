"""Typed limits for bounded wire decoding.

Single source of truth for every quantitative bound the hardened
decode layer enforces (:mod:`repro.protocol.wire` raises a
:class:`~repro.protocol.wire.ProtocolError` subclass the moment a
frame exceeds one).  :mod:`repro.protocol.spec` re-exports the limits
and renders them into the protocol reference so the numbers on the
wire and the numbers in the docs cannot drift.

The values are deliberately generous for honest traffic — every limit
sits well above what the reference server or client ever emits — while
still bounding the damage a hostile or broken peer can do: no frame
may declare a multi-gigabyte payload, no cursor may allocate an
unbounded pixel block, no compressed payload may expand past its
declared geometry, and an uplink parser can never be wedged holding
more than a small, fixed number of buffered bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WireLimits", "LIMITS"]


@dataclass(frozen=True)
class WireLimits:
    """Hard bounds the decode layer enforces on every wire field.

    ``LIMITS`` is the module-level instance every parser uses; tests
    construct tighter instances to exercise the failure paths cheaply.
    """

    #: Largest payload a downlink frame header may declare.  A
    #: corrupted or hostile length field past this raises instead of
    #: stalling the stream parser forever on bytes that never come.
    max_frame_bytes: int = 1 << 24

    #: Largest payload an *uplink* (client-to-server) frame may
    #: declare.  Legitimate uplink messages are all under 100 bytes;
    #: the cap is generous but keeps a hostile client from parking
    #: megabytes in the server's reassembly buffer.
    max_uplink_frame_bytes: int = 1 << 16

    #: Most bytes an uplink stream parser may hold buffered while
    #: waiting for the rest of a frame (belt to the max-frame braces).
    max_uplink_pending_bytes: int = 1 << 18

    #: Cursor images are small by nature (hardware cursors top out at
    #: 64x64; we allow far more).  Bounds the ``w*h*4`` allocation a
    #: CURSOR_IMAGE decode performs.
    max_cursor_dim: int = 512

    #: Largest PCM block one AUDIO message may carry.
    max_audio_chunk_bytes: int = 1 << 20

    #: Video pixel-format strings are short ASCII tags ("YV12").
    max_pixel_format_len: int = 16

    #: Largest width/height a RESIZE / SCREEN_INIT / VSETUP message
    #: may claim for a viewport or source geometry.
    max_viewport_dim: int = 16384

    #: Highest RAW payload encoding tag a decoder accepts (the
    #: :class:`repro.codec.Encoding` ladder: 0 raw, 1 PNG-model,
    #: 2 RLE, 3 lossy).  A tag past this dies before any payload
    #: decode is attempted.
    max_raw_encoding: int = 3

    #: Largest expansion a compressed RAW/COMPOSITE payload may
    #: declare; bounds the decompression output buffer so a deflate
    #: bomb cannot balloon a 16 MB frame into gigabytes of pixels.
    max_decoded_pixel_bytes: int = 1 << 26

    #: Ceiling on the ``retry_after`` a denial message may carry, so a
    #: lying server cannot park a client in permanent backoff.
    max_retry_after: float = 86400.0

    #: Largest frozen-session state blob one SESSION_TRANSFER frame may
    #: carry between shards.  A session's journal and queue are already
    #: bounded by the governor's budgets, so an honest transfer sits far
    #: below this; a corrupted length cannot balloon the decode.
    max_transfer_bytes: int = 1 << 23

    #: Largest shard index a fabric control message may name.  The
    #: coordinator runs a handful of shards; a four-digit ceiling keeps
    #: a corrupted field from addressing phantom hosts.
    max_shard_id: int = 4096

    #: Most tiles one SUBSCRIBE message may partition the virtual
    #: display wall into (``cols * rows``).  Real walls are a few dozen
    #: panels; the cap keeps a hostile subscriber from requesting a
    #: degenerate one-pixel grid the server would have to carve.
    max_wall_tiles: int = 4096

    #: Deepest rung of the video degradation ladder a VIDEO_QUALITY
    #: message may announce (0 full-rate YV12, 1 cadence halving,
    #: 2 resolution step-down, 3 chroma/quantise squeeze).
    max_qos_rung: int = 3

    #: Largest frame-cadence divisor a VIDEO_QUALITY descriptor may
    #: carry (the QoS ladder only ever halves, but the wire bound is
    #: what keeps a corrupted field from zeroing the stream).
    max_fps_divisor: int = 16

    #: Largest right-shift a VIDEO_QUALITY resolution step-down may
    #: declare; 3 already means one-eighth linear resolution.
    max_scale_shift: int = 3

    #: Largest quantiser step a VIDEO_QUALITY squeeze rung may name
    #: (the lossy codec's flat quantiser; 64 is already unwatchable).
    max_qos_qstep: int = 64

    #: Ceiling on the A/V sync skew a QOS_REPORT may claim, so one
    #: corrupted float cannot poison the server's quality averages.
    max_av_skew: float = 3600.0


#: The limits every production parser runs under.
LIMITS = WireLimits()
