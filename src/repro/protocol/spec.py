"""A machine-readable specification of the THINC wire protocol.

Single source of truth for what travels on the wire: every message
type, its numeric id, direction, payload layout and the paper section
it comes from.  The spec is checked against the implementation by the
test suite (ids unique and matching, registry complete) and rendered to
a protocol reference by :func:`render_protocol_reference` (used by
``docs/PROTOCOL.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from . import commands as _commands
from . import wire as _wire
from .limits import LIMITS, WireLimits

__all__ = [
    "MessageSpec",
    "PROTOCOL_SPEC",
    "WireLimits",
    "LIMITS",
    "UPLINK_TYPE_IDS",
    "DOWNLINK_TYPE_IDS",
    "FABRIC_TYPE_IDS",
    "SERVER_ACCEPTS",
    "CLIENT_ACCEPTS",
    "FABRIC_ACCEPTS",
    "render_protocol_reference",
]


@dataclass(frozen=True)
class MessageSpec:
    """One wire message type."""

    name: str
    type_id: int
    direction: str  # "s->c", "c->s", "s->s" (shard fabric internal)
    section: str  # paper section introducing it
    summary: str
    payload: str  # field layout after the [type u8][len u32] frame
    implementation: type


PROTOCOL_SPEC: List[MessageSpec] = [
    MessageSpec(
        "RAW", 1, "s->c", "3/Table 1",
        "Display raw pixel data at a given location; the last-resort "
        "command and the only one that may be compressed.  The encoding "
        "byte is a bounded enum (<= max_raw_encoding) naming how the "
        "payload is packed: 0 raw rows, 1 PNG-model (the paper's "
        "choice), 2 RLE, 3 JPEG-style lossy; see the encoding ladder "
        "below.",
        "rect[4xu16] encoding[u8] length[u32] payload[length]",
        _commands.RawCommand),
    MessageSpec(
        "COPY", 2, "s->c", "3/Table 1",
        "Copy a framebuffer area to new coordinates; accelerates "
        "scrolling and opaque window movement with no pixel resend.",
        "rect[4xu16] src_x[u16] src_y[u16]",
        _commands.CopyCommand),
    MessageSpec(
        "SFILL", 3, "s->c", "3/Table 1",
        "Fill an area with a single colour.",
        "rect[4xu16] rgba[4xu8]",
        _commands.SFillCommand),
    MessageSpec(
        "PFILL", 4, "s->c", "3/Table 1",
        "Tile an area with a pixel pattern; the tile travels once.",
        "rect[4xu16] tile_h[u8] tile_w[u8] origin_y[u8] origin_x[u8] "
        "tile[tile_h*tile_w*4]",
        _commands.PFillCommand),
    MessageSpec(
        "BITMAP", 5, "s->c", "3/Table 1",
        "Fill a region through a 1-bit stipple with fg (and optional "
        "bg) colours; transparent stipples carry glyph text.",
        "rect[4xu16] fg[4xu8] has_bg[u8] bg[4xu8] mask[packed bits]",
        _commands.BitmapCommand),
    MessageSpec(
        "COMPOSITE", 6, "s->c", "3 (alpha support)",
        "Porter-Duff 'over' blend of an RGBA block (anti-aliased text, "
        "translucency); payload compressed like RAW.",
        "rect[4xu16] length[u32] payload[length]",
        _commands.CompositeCommand),
    MessageSpec(
        "VFRAME", 7, "s->c", "4.2",
        "One video frame in a YUV wire format, self-contained "
        "(geometry and format ride along so frames survive stream "
        "control reordering and drops).",
        "rect[4xu16] stream[u16] frame_no[u32] format[u8] src_w[u16] "
        "src_h[u16] length[u32] yuv[length]",
        _commands.VideoFrameCommand),
    MessageSpec(
        "VSETUP", 16, "s->c", "4.2",
        "Open a video stream on the client.",
        "stream[u16] fmt_len[u8] src_w[u16] src_h[u16] rect[4xu16] "
        "fmt[fmt_len]",
        _wire.VideoSetupMessage),
    MessageSpec(
        "VMOVE", 17, "s->c", "4.2",
        "Move/resize a stream's output window.",
        "stream[u16] rect[4xu16]",
        _wire.VideoMoveMessage),
    MessageSpec(
        "VTEARDOWN", 18, "s->c", "4.2",
        "Close a video stream.",
        "stream[u16]",
        _wire.VideoTeardownMessage),
    MessageSpec(
        "AUDIO", 19, "s->c", "4.2/7",
        "A block of PCM samples stamped with server playback time "
        "(A/V synchronisation).",
        "timestamp[f64] samples[rest]",
        _wire.AudioChunkMessage),
    MessageSpec(
        "INPUT", 20, "c->s", "5",
        "User input; the server marks nearby updates real-time.",
        "kind[u8] x[u16] y[u16] time[f64]",
        _wire.InputMessage),
    MessageSpec(
        "RESIZE", 21, "c->s", "6",
        "Client reports its viewport; enables server-side scaling.",
        "width[u16] height[u16]",
        _wire.ResizeMessage),
    MessageSpec(
        "SCREEN_INIT", 22, "s->c", "7",
        "Session framebuffer geometry (sent on attach and viewport "
        "changes).",
        "width[u16] height[u16]",
        _wire.ScreenInitMessage),
    MessageSpec(
        "CURSOR_IMAGE", 23, "s->c", "7 (client simplicity)",
        "New pointer shape; position is tracked client-side for "
        "zero-latency pointer feedback.",
        "hot_x[u16] hot_y[u16] width[u16] height[u16] rgba[w*h*4]",
        _wire.CursorImageMessage),
    MessageSpec(
        "REFRESH", 24, "c->s", "(extension)",
        "Client asks for a region resend after local state loss.",
        "rect[4xu16]",
        _wire.RefreshRequestMessage),
    MessageSpec(
        "ZOOM", 25, "c->s", "6",
        "Client zooms its viewport onto a desktop region; an empty "
        "rect zooms back out to the full desktop. The server rescales "
        "subsequent updates and pushes a refresh of the view.",
        "rect[4xu16]",
        _wire.ZoomRequestMessage),
    MessageSpec(
        "CHECKED", 26, "s->c", "(extension: resilience)",
        "Integrity-checked wrapper around one framed message: CRC-32 "
        "over seq+inner turns wire corruption into a typed checksum "
        "error (resync, not crash); the per-session sequence number "
        "drives cumulative acks and duplicate-skip after resync. Only "
        "resilient sessions emit it, so old streams parse unchanged.",
        "crc32[u32] seq[u32] inner[framed message]",
        _wire.CheckedFrame),
    MessageSpec(
        "HEARTBEAT", 27, "c->s", "(extension: resilience)",
        "Periodic liveness beacon; last_seq is the highest CHECKED "
        "sequence applied (a cumulative ack pruning the server's "
        "replay log). Either side may send it; the reference client "
        "does.",
        "last_seq[u32] time[f64]",
        _wire.HeartbeatMessage),
    MessageSpec(
        "RECONNECT_REQ", 28, "c->s", "(extension: resilience)",
        "First message on a dialled connection: resume session <token> "
        "(0 = fresh attach) from CHECKED sequence last_seq.",
        "token[u32] last_seq[u32]",
        _wire.ReconnectRequestMessage),
    MessageSpec(
        "RECONNECT_ACCEPT", 29, "s->c", "(extension: resilience)",
        "Plane accepts the attach/reconnect and announces the resync "
        "mode (0 fresh, 1 replay of unacked frames, 2 region-chunked "
        "RAW snapshot); sent in the clear before the re-keyed session "
        "stream begins.",
        "token[u32] resync[u8]",
        _wire.ReconnectAcceptMessage),
    MessageSpec(
        "RECONNECT_DENIED", 30, "s->c", "(extension: resilience)",
        "Reconnect backoff push-back: retry no sooner than "
        "retry_after seconds from now.",
        "retry_after[f64]",
        _wire.ReconnectDeniedMessage),
    MessageSpec(
        "ATTACH_DENIED", 31, "s->c", "(extension: governance)",
        "Typed admission push-back on the plain attach path: the "
        "server's governor is out of global budget (reason 0), the "
        "session exhausted its own budget (1), or the session was "
        "quarantined for protocol abuse (2); retry no sooner than "
        "retry_after seconds from now.",
        "reason[u8] retry_after[f64]",
        _wire.AttachDeniedMessage),
    MessageSpec(
        "SESSION_TRANSFER", 32, "s->s", "(extension: cluster)",
        "A frozen session crossing the shard fabric during live "
        "migration: the token rides in the clear for routing; the "
        "state blob is the serialized SessionUnit surface (journal, "
        "queue, scaler view, sequence marks), bounded by "
        "max_transfer_bytes.  Never valid on a client-facing stream.",
        "token[u32] state[rest, <= max_transfer_bytes]",
        _wire.SessionTransferMessage),
    MessageSpec(
        "MIGRATE_BEGIN", 33, "s->s", "(extension: cluster)",
        "Coordinator orders the owning shard to freeze and hand off a "
        "session to target_shard; marks the start of the bounded "
        "migration detach window.",
        "token[u32] target_shard[u16]",
        _wire.MigrateBeginMessage),
    MessageSpec(
        "MIGRATE_COMPLETE", 34, "s->s", "(extension: cluster)",
        "Target shard acknowledges it thawed the session and owns the "
        "token; the coordinator flips routing so the client's next "
        "redial reaches the new owner.",
        "token[u32] shard[u16]",
        _wire.MigrateCompleteMessage),
    MessageSpec(
        "SHARD_ADMISSION", 35, "s->s", "(extension: cluster)",
        "A shard reports its governor's admission posture (session "
        "count, buffered display bytes, whether a fresh attach would "
        "be admitted) upward to the coordinator for placement and "
        "overflow routing.",
        "shard[u16] sessions[u32] queue_bytes[u64] admitting[u8]",
        _wire.ShardAdmissionReportMessage),
    MessageSpec(
        "SUBSCRIBE", 36, "c->s", "(extension: fanout)",
        "Client joins the broadcast fan-out plane: mode 0 mirrors the "
        "whole desktop (resampled into the session viewport), mode 1 "
        "claims tile <index> of a cols x rows partition of the virtual "
        "display wall (cols*rows <= max_wall_tiles; grid fields must "
        "be zero in mirror mode).  The server answers a tile claim "
        "with TILE_ASSIGN plus the usual geometry handshake.",
        "mode[u8] cols[u16] rows[u16] index[u32]",
        _wire.SubscribeMessage),
    MessageSpec(
        "TILE_ASSIGN", 37, "s->c", "(extension: fanout)",
        "Server grants a tile-wall subscriber its sub-rectangle: the "
        "virtual wall's full extent plus the tile rect in wall "
        "coordinates (the tile must lie inside the wall).  The "
        "session's stream then carries only content clipped to that "
        "tile, at 1:1 scale.",
        "wall_w[u16] wall_h[u16] rect[4xu16]",
        _wire.TileAssignMessage),
    MessageSpec(
        "VIDEO_QUALITY", 38, "s->c", "(extension: qos)",
        "Server announces a video stream's negotiated quality rung "
        "whenever the QoS degradation ladder moves (healthy links "
        "never see one): fps_divisor ships only every Nth source "
        "frame, scale_shift right-shifts the source dimensions before "
        "encoding (the client's overlay scaler restores the output "
        "size), and qstep names the bottom rung's chroma/quantise "
        "squeeze (0 = lossless YV12).",
        "stream[u16] rung[u8] fps_divisor[u8] scale_shift[u8] qstep[u8]",
        _wire.VideoQualityMessage),
    MessageSpec(
        "QOS_REPORT", 39, "c->s", "(extension: qos)",
        "Client feeds delivered A/V quality back to the server: frames "
        "actually presented plus the Section 8.2 playback/audio quality "
        "fractions and the A/V sync skew over one stream's arrival "
        "records.  The QoS plane uses it to confirm a ramp-up took on "
        "the client, not just on the byte counters.",
        "stream[u16] frames[u32] playback_q[f64] audio_q[f64] "
        "av_skew[f64]",
        _wire.QosReportMessage),
]

#: Type ids a client may legitimately send to the server.  The
#: server's uplink parser rejects everything else at the frame header,
#: before any payload decode runs.
UPLINK_TYPE_IDS = frozenset(
    spec.type_id for spec in PROTOCOL_SPEC if spec.direction == "c->s")

#: Type ids the server may send to a client.  HEARTBEAT rides both
#: directions (either side may beacon), so it appears in both sets.
DOWNLINK_TYPE_IDS = frozenset(
    spec.type_id for spec in PROTOCOL_SPEC
    if spec.direction == "s->c") | {_wire.HeartbeatMessage.type_id}

#: Type ids that only travel between fabric peers (coordinator and
#: shards).  They are valid on *no* client-facing stream: the uplink
#: and downlink allow-lists above exclude them by construction, so a
#: client smuggling a SESSION_TRANSFER at a server dies at the frame
#: header.
FABRIC_TYPE_IDS = frozenset(
    spec.type_id for spec in PROTOCOL_SPEC if spec.direction == "s->s")

#: Parser-role aliases for the direction sets above: what each kind of
#: `StreamParser` accepts at the frame header.  Every parser
#: constructor in the tree must name one of these (never a local set
#: literal), so the spec stays the single source of truth — checked
#: mechanically by THL201 in :mod:`repro.analysis.contracts`.
SERVER_ACCEPTS = UPLINK_TYPE_IDS  # the server's uplink parser
CLIENT_ACCEPTS = DOWNLINK_TYPE_IDS  # any client's downlink parser
FABRIC_ACCEPTS = FABRIC_TYPE_IDS  # the coordinator's shard fabric


def render_protocol_reference() -> str:
    """The protocol reference document, generated from the spec."""
    lines = [
        "# THINC wire protocol reference",
        "",
        "Generated from `repro.protocol.spec` (the test suite keeps the",
        "spec and the implementation in lock step). Every message is",
        "framed as `[type u8][length u32][payload]`, big-endian",
        "throughout; when RC4 is enabled the whole framed stream is",
        "encrypted.",
        "",
        "| id | message | dir | paper | payload |",
        "|---|---|---|---|---|",
    ]
    for spec in PROTOCOL_SPEC:
        lines.append(
            f"| {spec.type_id} | `{spec.name}` | {spec.direction} | "
            f"{spec.section} | `{spec.payload}` |")
    lines.append("")
    lines += [
        "The conformance matrix in [CONTRACTS.md](CONTRACTS.md) —",
        "generated by `python -m repro.analysis --contracts` — shows,",
        "for every id above, which parsers accept it, which dispatch",
        "sites handle it, and which payload fields are bounds-checked.",
        "",
    ]
    for spec in PROTOCOL_SPEC:
        lines.append(f"## {spec.type_id} — {spec.name}")
        lines.append("")
        lines.append(spec.summary)
        lines.append("")
    lines += [
        "## RAW payload encodings",
        "",
        "The RAW command's encoding byte names one of the",
        "`repro.codec.Encoding` values; anything above",
        "`max_raw_encoding` is rejected before payload decode.",
        "",
        "| tag | encoding | lossless | payload |",
        "|---|---|---|---|",
        "| 0 | `NONE` | yes | `h*w*4` RGBA rows, no framing |",
        "| 1 | `PNG` | yes | `h[u16] w[u16] c[u8] filter[u8]` + "
        "DEFLATE of filtered rows (filter 0 = Up, 1 = Paeth) |",
        "| 2 | `RLE` | yes | `h[u16] w[u16]` + (count[u16] rgba[4xu8]) "
        "run pairs covering exactly `h*w` pixels |",
        "| 3 | `LOSSY` | no | `h[u16] w[u16] qstep[u8]` + DEFLATE of "
        "quantised YV12 (4:2:0) + alpha planes at even-padded "
        "dimensions |",
        "",
        "Tags 0/1 coincide with the historical boolean `compressed`",
        "flag, so pre-enum streams decode unchanged.",
        "",
        "### Adaptive selection ladder",
        "",
        "With the adaptive encoder enabled, `repro.codec.EncoderPolicy`",
        "picks per command from block content and link posture (the",
        "governor's degraded flag, or measured downlink throughput at",
        "the packet monitor approaching link capacity):",
        "",
        "* solid block -> demoted to an `SFILL` command outright;",
        "* flat block (tiny palette, long runs) -> `RLE`;",
        "* otherwise -> `PNG` while the link is idle (lossless floor),",
        "  `LOSSY` under degraded posture — a later lossless refresh",
        "  restores pixel-exact content once the link drains.",
        "",
        "## Decode limits",
        "",
        "Hard bounds the decode layer (`repro.protocol.wire`) enforces",
        "on every frame; exceeding one raises a `ProtocolError`",
        "subclass. Defined in `repro.protocol.limits`.",
        "",
        "| limit | value |",
        "|---|---|",
    ]
    for field in sorted(vars(LIMITS)):
        lines.append(f"| `{field}` | {getattr(LIMITS, field)} |")
    lines.append("")
    return "\n".join(lines)
