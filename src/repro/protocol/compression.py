"""Pixel-data compression for RAW protocol commands.

RAW is the only THINC command carrying bulk pixel data, and the only one
the prototype compresses (Section 7, using PNG).  This module implements
the PNG compression model — per-row Paeth prediction filtering followed
by DEFLATE — directly on RGBA pixel arrays, plus the plainer codecs the
baseline systems use (raw zlib at several effort levels, and an RLE
codec approximating VNC-style hextile encodings).
"""

from __future__ import annotations

import numpy as np
import zlib

from .limits import LIMITS

__all__ = [
    "png_compress",
    "png_decompress",
    "zlib_compress",
    "zlib_decompress",
    "rle_compress",
    "rle_size",
    "rle_decompress",
]


def _paeth_predictor(a: np.ndarray, b: np.ndarray, c: np.ndarray
                     ) -> np.ndarray:
    """PNG's Paeth predictor, vectorised over int16 arrays."""
    p = a.astype(np.int16) + b.astype(np.int16) - c.astype(np.int16)
    pa = np.abs(p - a)
    pb = np.abs(p - b)
    pc = np.abs(p - c)
    pred = np.where((pa <= pb) & (pa <= pc), a, np.where(pb <= pc, b, c))
    return pred.astype(np.uint8)


def _paeth_filter(pixels: np.ndarray) -> np.ndarray:
    """Apply the Paeth filter to every row of an HxWxC image."""
    img = pixels.astype(np.uint8)
    h, w, c = img.shape
    flat = img.reshape(h, w * c)
    left = np.zeros_like(flat)
    left[:, c:] = flat[:, :-c]
    up = np.zeros_like(flat)
    up[1:, :] = flat[:-1, :]
    upleft = np.zeros_like(flat)
    upleft[1:, c:] = flat[:-1, :-c]
    pred = _paeth_predictor(left, up, upleft)
    return (flat.astype(np.int16) - pred.astype(np.int16)).astype(np.uint8)


def _paeth_unfilter(filtered: np.ndarray, height: int, width: int,
                    channels: int) -> np.ndarray:
    """Invert the Paeth filter (inherently sequential, like libpng)."""
    flat = filtered.reshape(height, width * channels)
    out = np.zeros_like(flat)
    c = channels
    for y in range(height):
        for xi in range(flat.shape[1]):
            a = int(out[y, xi - c]) if xi >= c else 0
            b = int(out[y - 1, xi]) if y >= 1 else 0
            cc = int(out[y - 1, xi - c]) if (y >= 1 and xi >= c) else 0
            p = a + b - cc
            pa, pb, pc = abs(p - a), abs(p - b), abs(p - cc)
            if pa <= pb and pa <= pc:
                pred = a
            elif pb <= pc:
                pred = b
            else:
                pred = cc
            out[y, xi] = (int(flat[y, xi]) + pred) & 0xFF
    return out.reshape(height, width, channels)


def _up_filter(pixels: np.ndarray) -> np.ndarray:
    """PNG 'Up' predictor: each row minus the row above (mod 256)."""
    img = pixels.astype(np.uint8)
    h, w, c = img.shape
    flat = img.reshape(h, w * c).astype(np.int16)
    up = np.zeros_like(flat)
    up[1:, :] = flat[:-1, :]
    return (flat - up).astype(np.uint8)


def _up_unfilter(filtered: np.ndarray, height: int, width: int,
                 channels: int) -> np.ndarray:
    """Invert the Up filter via a modular column cumsum (vectorised)."""
    flat = filtered.reshape(height, width * channels).astype(np.uint64)
    out = np.cumsum(flat, axis=0) % 256
    return out.astype(np.uint8).reshape(height, width, channels)


_FILTER_IDS = {"up": 0, "paeth": 1}


def png_compress(pixels: np.ndarray, level: int = 6,
                 row_filter: str = "up") -> bytes:
    """PNG-model compression: predictive row filter + DEFLATE.

    Input is an HxWxC uint8 array; the output embeds the dimensions and
    filter so that :func:`png_decompress` is self-contained.  The default
    'up' predictor is fully vectorisable in both directions; 'paeth'
    matches libpng's usual choice but its unfilter is inherently
    sequential and only suitable for small blocks.
    """
    img = np.ascontiguousarray(pixels, dtype=np.uint8)
    if img.ndim != 3:
        raise ValueError("expected an HxWxC pixel array")
    if row_filter not in _FILTER_IDS:
        raise ValueError(f"unknown row filter {row_filter!r}")
    h, w, c = img.shape
    filtered = _up_filter(img) if row_filter == "up" else _paeth_filter(img)
    body = zlib.compress(filtered.tobytes(), level)
    header = (h.to_bytes(2, "big") + w.to_bytes(2, "big")
              + bytes([c, _FILTER_IDS[row_filter]]))
    return header + body


def png_decompress(data: bytes) -> np.ndarray:
    """Invert :func:`png_compress`.

    Decompression is bounded by the geometry the header declares (and
    the global decoded-pixel limit): the DEFLATE stream is only allowed
    to produce ``h*w*c`` bytes, so a crafted payload cannot balloon a
    small frame into gigabytes of output before the size check runs.
    """
    if len(data) < 6:
        raise ValueError("truncated compressed pixel data")
    h = int.from_bytes(data[0:2], "big")
    w = int.from_bytes(data[2:4], "big")
    c = data[4]
    filter_id = data[5]
    expected = h * w * c
    if expected > LIMITS.max_decoded_pixel_bytes:
        raise ValueError(
            f"declared geometry {h}x{w}x{c} decodes to {expected} bytes, "
            f"limit is {LIMITS.max_decoded_pixel_bytes}")
    # Ask for at most one byte more than the geometry needs: a stream
    # that still has output at expected+1 can only be oversized, and we
    # reject it without ever materialising the excess.
    dec = zlib.decompressobj()
    raw = dec.decompress(data[6:], expected + 1)
    if len(raw) != expected or dec.unconsumed_tail:
        raise ValueError(
            f"decompressed to more or fewer than the expected "
            f"{expected} bytes"
        )
    filtered = np.frombuffer(raw, dtype=np.uint8).reshape(h, w * c).copy()
    if filter_id == _FILTER_IDS["up"]:
        return _up_unfilter(filtered, h, w, c)
    if filter_id == _FILTER_IDS["paeth"]:
        return _paeth_unfilter(filtered, h, w, c)
    raise ValueError(f"unknown filter id {filter_id}")


def zlib_compress(data: bytes, level: int = 6) -> bytes:
    """Plain DEFLATE, as used by X-over-ssh and the VNC/NX baselines."""
    return zlib.compress(data, level)


def zlib_decompress(data: bytes) -> bytes:
    """Inverse of :func:`zlib_compress`."""
    return zlib.decompress(data)


def rle_compress(pixels: np.ndarray) -> bytes:
    """Run-length encode pixels, approximating VNC's hextile family.

    Encodes runs of identical RGBA pixels as (count, pixel) pairs with a
    16-bit count.  Cheap to compute and effective on the flat-colour
    content of desktop screens, poor on photographic data — the same
    trade-off the paper observes for VNC.
    """
    img = np.ascontiguousarray(pixels, dtype=np.uint8)
    if img.ndim != 3 or img.shape[2] != 4:
        raise ValueError("expected an HxWx4 RGBA array")
    h, w, _ = img.shape
    flat = img.reshape(-1, 4)
    view = flat.view(np.uint32).ravel()
    out = bytearray()
    out += h.to_bytes(2, "big") + w.to_bytes(2, "big")
    if len(view):
        # Find run boundaries.
        changes = np.flatnonzero(np.diff(view)) + 1
        starts = np.concatenate(([0], changes))
        ends = np.concatenate((changes, [len(view)]))
        for s, e in zip(starts, ends):
            run = e - s
            while run > 0:
                chunk = min(run, 0xFFFF)
                out += int(chunk).to_bytes(2, "big")
                out += flat[s].tobytes()
                run -= chunk
    return bytes(out)


def rle_size(pixels: np.ndarray) -> int:
    """The exact output size of :func:`rle_compress`, computed without
    materialising the encoding (vectorised; used by hot encoder paths).
    """
    img = np.ascontiguousarray(pixels, dtype=np.uint8)
    if img.ndim != 3 or img.shape[2] != 4:
        raise ValueError("expected an HxWx4 RGBA array")
    view = img.reshape(-1, 4).view(np.uint32).ravel()
    if len(view) == 0:
        return 4
    changes = np.flatnonzero(np.diff(view)) + 1
    starts = np.concatenate(([0], changes))
    ends = np.concatenate((changes, [len(view)]))
    lengths = ends - starts
    # Runs longer than 0xFFFF are emitted in chunks.
    chunks = int(np.sum((lengths + 0xFFFF - 1) // 0xFFFF))
    return 4 + 6 * chunks


def rle_decompress(data: bytes) -> np.ndarray:
    """Invert :func:`rle_compress`."""
    if len(data) < 4:
        raise ValueError("truncated RLE data")
    h = int.from_bytes(data[0:2], "big")
    w = int.from_bytes(data[2:4], "big")
    total = h * w
    out = np.empty((total, 4), dtype=np.uint8)
    pos = 4
    filled = 0
    while filled < total:
        if pos + 6 > len(data):
            raise ValueError("truncated RLE run")
        run = int.from_bytes(data[pos : pos + 2], "big")
        pixel = np.frombuffer(data[pos + 2 : pos + 6], dtype=np.uint8)
        out[filled : filled + run] = pixel
        filled += run
        pos += 6
    if filled != total or pos != len(data):
        raise ValueError("RLE data does not match declared dimensions")
    return out.reshape(h, w, 4)
