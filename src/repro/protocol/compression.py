"""Pixel-data compression for RAW protocol commands.

RAW is the only THINC command carrying bulk pixel data, and the only one
the prototype compresses (Section 7, using PNG).  This module is the
protocol-facing surface of the codec plane: the PNG compression model —
per-row predictive filtering followed by DEFLATE — plus the plainer
codecs the baselines and the adaptive encoder use (raw zlib at several
effort levels, an RLE codec approximating VNC-style hextile encodings,
and a JPEG-style lossy codec).  The numpy kernels live in
:mod:`repro.codec.kernels` (no per-pixel Python loops anywhere — the
Paeth unfilter runs as an anti-diagonal wavefront); this module owns
the byte formats and binds every decoder to the global decode bounds in
:mod:`repro.protocol.limits`.
"""

from __future__ import annotations

import numpy as np
import zlib

from ..codec import encodings as _lossy
from ..codec import kernels
from .limits import LIMITS

__all__ = [
    "png_compress",
    "png_compress_batch",
    "png_decompress",
    "zlib_compress",
    "zlib_decompress",
    "rle_compress",
    "rle_size",
    "rle_decompress",
    "lossy_compress",
    "lossy_decompress",
]


_FILTER_IDS = {"up": 0, "paeth": 1}


def _png_header(h: int, w: int, c: int, row_filter: str) -> bytes:
    return (h.to_bytes(2, "big") + w.to_bytes(2, "big")
            + bytes([c, _FILTER_IDS[row_filter]]))


def png_compress(pixels: np.ndarray, level: int = 6,
                 row_filter: str = "up") -> bytes:
    """PNG-model compression: predictive row filter + DEFLATE.

    Input is an HxWxC uint8 array; the output embeds the dimensions and
    filter so that :func:`png_decompress` is self-contained.  The
    default 'up' predictor is fully vectorisable in both directions;
    'paeth' matches libpng's usual choice and its unfilter runs as an
    anti-diagonal wavefront (O(h+w) numpy steps).
    """
    img = np.ascontiguousarray(pixels, dtype=np.uint8)
    if img.ndim != 3:
        raise ValueError("expected an HxWxC pixel array")
    if row_filter not in _FILTER_IDS:
        raise ValueError(f"unknown row filter {row_filter!r}")
    h, w, c = img.shape
    filtered = (kernels.up_filter(img) if row_filter == "up"
                else kernels.paeth_filter(img))
    body = zlib.compress(filtered.tobytes(), level)
    return _png_header(h, w, c, row_filter) + body


def png_compress_batch(blocks, level: int = 6) -> list:
    """Compress N same-shape HxWxC blocks in one fused filter pass.

    The batch-prepare path: the 'up' row filter runs once over the
    whole (N, H, W, C) stack, then each filtered image is DEFLATEd
    individually (payloads stay per-command on the wire).  Byte-for-byte
    identical to calling :func:`png_compress` per block.
    """
    blocks = list(blocks)
    if not blocks:
        return []
    stack = np.stack([np.ascontiguousarray(b, dtype=np.uint8)
                      for b in blocks])
    if stack.ndim != 4:
        raise ValueError("expected a batch of HxWxC pixel arrays")
    _, h, w, c = stack.shape
    filtered = kernels.batch_up_filter(stack)
    header = _png_header(h, w, c, "up")
    return [header + zlib.compress(f.tobytes(), level) for f in filtered]


def png_decompress(data: bytes) -> np.ndarray:
    """Invert :func:`png_compress`.

    Decompression is bounded by the geometry the header declares (and
    the global decoded-pixel limit): the DEFLATE stream is only allowed
    to produce ``h*w*c`` bytes, so a crafted payload cannot balloon a
    small frame into gigabytes of output before the size check runs.
    """
    if len(data) < 6:
        raise ValueError("truncated compressed pixel data")
    h = int.from_bytes(data[0:2], "big")
    w = int.from_bytes(data[2:4], "big")
    c = data[4]
    filter_id = data[5]
    expected = h * w * c
    if expected > LIMITS.max_decoded_pixel_bytes:
        raise ValueError(
            f"declared geometry {h}x{w}x{c} decodes to {expected} bytes, "
            f"limit is {LIMITS.max_decoded_pixel_bytes}")
    # Ask for at most one byte more than the geometry needs: a stream
    # that still has output at expected+1 can only be oversized, and we
    # reject it without ever materialising the excess.
    dec = zlib.decompressobj()
    raw = dec.decompress(data[6:], expected + 1)
    if len(raw) != expected or dec.unconsumed_tail:
        raise ValueError(
            f"decompressed to more or fewer than the expected "
            f"{expected} bytes"
        )
    filtered = np.frombuffer(raw, dtype=np.uint8).reshape(h, w * c).copy()
    if filter_id == _FILTER_IDS["up"]:
        return kernels.up_unfilter(filtered, h, w, c)
    if filter_id == _FILTER_IDS["paeth"]:
        return kernels.paeth_unfilter(filtered, h, w, c)
    raise ValueError(f"unknown filter id {filter_id}")


def zlib_compress(data: bytes, level: int = 6) -> bytes:
    """Plain DEFLATE, as used by X-over-ssh and the VNC/NX baselines."""
    return zlib.compress(data, level)


def zlib_decompress(data: bytes) -> bytes:
    """Inverse of :func:`zlib_compress`."""
    return zlib.decompress(data)


def rle_compress(pixels: np.ndarray) -> bytes:
    """Run-length encode pixels, approximating VNC's hextile family.

    Encodes runs of identical RGBA pixels as (count, pixel) pairs with a
    16-bit count.  Cheap to compute and effective on the flat-colour
    content of desktop screens, poor on photographic data — the same
    trade-off the paper observes for VNC.
    """
    img = np.ascontiguousarray(pixels, dtype=np.uint8)
    if img.ndim != 3 or img.shape[2] != 4:
        raise ValueError("expected an HxWx4 RGBA array")
    h, w, _ = img.shape
    return (h.to_bytes(2, "big") + w.to_bytes(2, "big")
            + kernels.rle_encode(img))


def rle_size(pixels: np.ndarray) -> int:
    """The exact output size of :func:`rle_compress`, computed without
    materialising the encoding (vectorised; used by hot encoder paths).
    """
    img = np.ascontiguousarray(pixels, dtype=np.uint8)
    if img.ndim != 3 or img.shape[2] != 4:
        raise ValueError("expected an HxWx4 RGBA array")
    return 4 + kernels.rle_encoded_size(img)


def rle_decompress(data: bytes) -> np.ndarray:
    """Invert :func:`rle_compress`.

    Bounded like :func:`png_decompress`: the declared geometry may not
    exceed the global decoded-pixel limit, and the runs must cover it
    exactly with no trailing bytes.
    """
    if len(data) < 4:
        raise ValueError("truncated RLE data")
    h = int.from_bytes(data[0:2], "big")
    w = int.from_bytes(data[2:4], "big")
    if h * w * 4 > LIMITS.max_decoded_pixel_bytes:
        raise ValueError(
            f"declared geometry {h}x{w} decodes to {h * w * 4} bytes, "
            f"limit is {LIMITS.max_decoded_pixel_bytes}")
    return kernels.rle_decode(data[4:], h * w).reshape(h, w, 4)


def lossy_compress(pixels: np.ndarray, qstep: int = 8) -> bytes:
    """JPEG-style lossy compression (4:2:0 + quantise + DEFLATE)."""
    return _lossy.lossy_encode(pixels, qstep)


def lossy_decompress(data: bytes) -> np.ndarray:
    """Invert :func:`lossy_compress` up to quantisation error, bounded
    by the global decoded-pixel limit."""
    return _lossy.lossy_decode(data, LIMITS.max_decoded_pixel_bytes)
