"""The paper's evaluation, experiment by experiment.

One function per figure of Section 8 (plus the local-PC control rows).
Each returns structured results and can render the same table the paper
plots.  ``scale`` trades run time for fidelity: 1.0 reproduces the full
54-page / 834-frame workloads; smaller values truncate them (byte
totals for A/V are extrapolated — playback is steady-state — and page
means are over the truncated prefix).

Index:

=========  ==========================================================
fig2       Web benchmark: average page latency (LAN/WAN/PDA)
fig3       Web benchmark: average per-page data (LAN/WAN/PDA)
fig4       THINC web latency from the Table 2 remote sites
fig5       A/V benchmark: A/V quality (LAN/WAN/PDA)
fig6       A/V benchmark: total data transferred (LAN/WAN/PDA)
fig7       THINC A/V quality + relative bandwidth from remote sites
=========  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..baselines import LocalPCModel
from ..net import LAN_DESKTOP, PDA_80211G, WAN_DESKTOP, LinkParams
from ..video.stream import BENCHMARK_CLIP
from ..workloads.web import make_page_set
from .reporting import format_mbytes, format_ms, format_pct, format_table
from .sites import REMOTE_SITES, site_link
from .slowmotion import AVRunResult, WebRunResult
from .testbed import (AV_PLATFORMS, WEB_PDA_PLATFORMS, WEB_PLATFORMS,
                      run_av_benchmark, run_web_benchmark)

__all__ = ["fig2_web_latency", "fig3_web_data", "fig4_web_remote",
           "fig5_av_quality", "fig6_av_data", "fig7_av_remote",
           "WebFigures", "AVFigures", "PDA_VIEWPORT"]

PDA_VIEWPORT = (320, 240)

# The networks of Section 8.1, in figure order.
_WEB_CONFIGS: List[Tuple[str, LinkParams, bool, Optional[Tuple[int, int]]]] = [
    ("LAN Desktop", LAN_DESKTOP, False, None),
    ("WAN Desktop", WAN_DESKTOP, True, None),
    ("802.11g PDA", PDA_80211G, False, PDA_VIEWPORT),
]

# Platforms shown per network in Figures 5/6's PDA series.
AV_PDA_PLATFORMS = ["THINC", "RDP", "ICA", "GoToMyPC"]


def _local_pc_page_metrics(link: LinkParams, page_count: int,
                           seed: int = 54):
    """Mean (latency, bytes) for the local PC over the page set."""
    model = LocalPCModel()
    pages = make_page_set(count=page_count)
    metrics = [model.page_metrics(p.content_bytes, p.render_pixels, link)
               for p in pages]
    mean_latency = sum(m[0] for m in metrics) / len(metrics)
    mean_bytes = sum(m[1] for m in metrics) / len(metrics)
    return mean_latency, mean_bytes


@dataclass
class WebFigures:
    """Raw material for Figures 2 and 3."""

    page_count: int
    runs: Dict[Tuple[str, str], WebRunResult] = field(default_factory=dict)
    local_pc: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    def latency_table(self) -> str:
        rows = []
        for network, _, _, _ in _WEB_CONFIGS:
            if network in self.local_pc and network != "802.11g PDA":
                latency, _ = self.local_pc[network]
                rows.append(["local PC", network, format_ms(latency), "-"])
            for name in WEB_PLATFORMS:
                run = self.runs.get((name, network))
                if run is None:
                    continue
                rows.append([
                    name, network,
                    format_ms(run.mean_latency),
                    format_ms(run.mean_latency_with_processing),
                ])
        return format_table(
            "Figure 2 — Web Benchmark: Average Page Latency",
            ["platform", "network", "latency", "latency+client"],
            rows,
            note=f"{self.page_count} pages per run "
                 "(paper: 54; means are stable after ~8)",
        )

    def data_table(self) -> str:
        rows = []
        for network, _, _, _ in _WEB_CONFIGS:
            if network in self.local_pc and network != "802.11g PDA":
                _, nbytes = self.local_pc[network]
                rows.append(["local PC", network, format_mbytes(nbytes)])
            for name in WEB_PLATFORMS:
                run = self.runs.get((name, network))
                if run is None:
                    continue
                rows.append([name, network,
                             format_mbytes(run.mean_page_bytes)])
        return format_table(
            "Figure 3 — Web Benchmark: Average Page Data Transferred",
            ["platform", "network", "data/page"],
            rows,
        )


def _run_web_figures(page_count: int = 8) -> WebFigures:
    figures = WebFigures(page_count=page_count)
    for network, link, wan, viewport in _WEB_CONFIGS:
        if viewport is None:
            figures.local_pc[network] = _local_pc_page_metrics(
                link, page_count)
        names = WEB_PLATFORMS if viewport is None else WEB_PDA_PLATFORMS
        for name in names:
            figures.runs[(name, network)] = run_web_benchmark(
                name, link, network, page_count=page_count,
                viewport=viewport, wan_mode=wan)
    return figures


_web_cache: Dict[int, WebFigures] = {}


def web_figures(page_count: int = 8) -> WebFigures:
    """Figures 2 and 3 share their runs; results are cached per size."""
    if page_count not in _web_cache:
        _web_cache[page_count] = _run_web_figures(page_count)
    return _web_cache[page_count]


def fig2_web_latency(page_count: int = 8) -> str:
    return web_figures(page_count).latency_table()


def fig3_web_data(page_count: int = 8) -> str:
    return web_figures(page_count).data_table()


def fig4_web_remote(page_count: int = 5) -> str:
    """THINC page latency from each Table 2 site."""
    rows = []
    lan = run_web_benchmark("THINC", LAN_DESKTOP, "testbed LAN",
                            page_count=page_count)
    rows.append(["(testbed)", "0", format_ms(lan.mean_latency)])
    for site in REMOTE_SITES:
        run = run_web_benchmark("THINC", site_link(site), site.code,
                                page_count=page_count)
        rows.append([f"{site.code} {site.location}",
                     f"{site.rtt * 1000:.0f}",
                     format_ms(run.mean_latency)])
    return format_table(
        "Figure 4 — Web Benchmark: THINC Page Latency from Remote Sites",
        ["site", "RTT (ms)", "latency"],
        rows,
        note="PlanetLab sites use 256 KB TCP windows; others 1 MB",
    )


@dataclass
class AVFigures:
    """Raw material for Figures 5 and 6."""

    max_frames: int
    runs: Dict[Tuple[str, str], AVRunResult] = field(default_factory=dict)
    local_pc: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    def quality_table(self) -> str:
        rows = []
        for network, _, _, viewport in _WEB_CONFIGS:
            if network in self.local_pc and network != "802.11g PDA":
                quality, _ = self.local_pc[network]
                rows.append(["local PC", network, format_pct(quality)])
            names = AV_PLATFORMS if viewport is None else AV_PDA_PLATFORMS
            for name in names:
                run = self.runs.get((name, network))
                if run is None:
                    continue
                label = name
                if name in ("VNC", "GoToMyPC"):
                    label += " (video only)"
                rows.append([label, network, format_pct(run.av_quality)])
        return format_table(
            "Figure 5 — A/V Benchmark: A/V Quality",
            ["platform", "network", "A/V quality"],
            rows,
            note="GoToMyPC and VNC have no audio support",
        )

    def data_table(self) -> str:
        clip = BENCHMARK_CLIP()
        rows = []
        for network, _, _, viewport in _WEB_CONFIGS:
            if network in self.local_pc and network != "802.11g PDA":
                _, nbytes = self.local_pc[network]
                rows.append(["local PC", network, format_mbytes(nbytes),
                             f"{nbytes * 8 / clip.duration / 1e6:.1f}"])
            names = AV_PLATFORMS if viewport is None else AV_PDA_PLATFORMS
            for name in names:
                run = self.runs.get((name, network))
                if run is None:
                    continue
                rows.append([name, network,
                             format_mbytes(run.total_bytes_full_clip),
                             f"{run.bandwidth_mbps:.1f}"])
        return format_table(
            "Figure 6 — A/V Benchmark: Total Data Transferred",
            ["platform", "network", "total data (full clip)", "Mbps"],
            rows,
            note="systems below THINC's volume are dropping video data",
        )


def _run_av_figures(max_frames: int = 120) -> AVFigures:
    figures = AVFigures(max_frames=max_frames)
    model = LocalPCModel()
    clip = BENCHMARK_CLIP()
    for network, link, wan, viewport in _WEB_CONFIGS:
        if viewport is None:
            quality, nbytes = model.video_metrics(clip.duration, link)
            figures.local_pc[network] = (quality, nbytes)
        names = AV_PLATFORMS if viewport is None else AV_PDA_PLATFORMS
        for name in names:
            figures.runs[(name, network)] = run_av_benchmark(
                name, link, network, max_frames=max_frames,
                viewport=viewport, wan_mode=wan)
    return figures


_av_cache: Dict[int, AVFigures] = {}


def av_figures(max_frames: int = 120) -> AVFigures:
    if max_frames not in _av_cache:
        _av_cache[max_frames] = _run_av_figures(max_frames)
    return _av_cache[max_frames]


def fig5_av_quality(max_frames: int = 120) -> str:
    return av_figures(max_frames).quality_table()


def fig6_av_data(max_frames: int = 120) -> str:
    return av_figures(max_frames).data_table()


def fig7_av_remote(max_frames: int = 96) -> str:
    """THINC A/V quality and relative bandwidth from each remote site."""
    lan = run_av_benchmark("THINC", LAN_DESKTOP, "testbed LAN",
                           max_frames=max_frames)
    rows = [["(testbed)", format_pct(lan.av_quality), "100%"]]
    for site in REMOTE_SITES:
        link = site_link(site)
        run = run_av_benchmark("THINC", link, site.code,
                               max_frames=max_frames)
        relative = link.throughput / LAN_DESKTOP.throughput
        rows.append([f"{site.code} {site.location}",
                     format_pct(run.av_quality),
                     format_pct(min(relative, 1.0))])
    return format_table(
        "Figure 7 — A/V Benchmark: THINC Quality from Remote Sites",
        ["site", "A/V quality", "relative bandwidth"],
        rows,
        note="Korea's PlanetLab node is capped at a 256 KB TCP window",
    )
