"""Post-run analysis: wire breakdowns and latency statistics.

Turns raw measurement material (client command counters, packet traces,
latency samples) into the summaries the examples and the CLI print —
the reproduction's equivalent of the paper's discussion paragraphs that
interpret the figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = ["CommandMix", "command_mix", "latency_stats", "LatencyStats",
           "bandwidth_timeline", "pipeline_report"]


@dataclass(frozen=True)
class CommandMix:
    """How a session's wire bytes divide across protocol commands."""

    counts: Dict[str, int]
    bytes_by_kind: Dict[str, int]

    @property
    def total_commands(self) -> int:
        return sum(self.counts.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_kind.values())

    def share(self, kind: str) -> float:
        """Fraction of wire bytes carried by *kind* (0 when none)."""
        total = self.total_bytes
        return self.bytes_by_kind.get(kind, 0) / total if total else 0.0

    def table_rows(self) -> List[List[str]]:
        rows = []
        for kind in sorted(self.bytes_by_kind,
                           key=self.bytes_by_kind.get, reverse=True):
            rows.append([
                kind.upper(),
                str(self.counts.get(kind, 0)),
                f"{self.bytes_by_kind[kind]:,}",
                f"{self.share(kind) * 100:.1f}%",
            ])
        return rows


def command_mix(trace_records) -> CommandMix:
    """Compute the command mix from recorded protocol chunks.

    Accepts the records produced by :mod:`repro.protocol.trace`.
    """
    from ..protocol import wire

    parser = wire.StreamParser()
    counts: Dict[str, int] = {}
    sizes: Dict[str, int] = {}
    for record in trace_records:
        for msg in parser.feed(record.data):
            kind = getattr(msg, "kind", type(msg).__name__)
            counts[kind] = counts.get(kind, 0) + 1
            if hasattr(msg, "wire_size"):
                size = msg.wire_size()
            elif hasattr(msg, "encode_payload"):
                size = len(msg.encode_payload())
            else:
                size = 0
            sizes[kind] = sizes.get(kind, 0) + size
    return CommandMix(counts, sizes)


def pipeline_report(stats: Dict[str, Dict[str, float]]) -> List[List[str]]:
    """Table rows summarising per-stage pipeline counters.

    Accepts the dict produced by ``THINCServer.pipeline_stats`` (stage
    name -> counters) and returns rows of
    ``[stage, in, out, bytes, cpu, cache]`` suitable for
    :func:`repro.bench.reporting.format_table`.  Zero-valued cells
    render as ``-`` so the table highlights where work happens.
    """
    rows: List[List[str]] = []
    for stage, counters in stats.items():
        hits = counters.get("cache_hits", 0)
        misses = counters.get("cache_misses", 0)
        cpu = counters.get("cpu_seconds", 0.0)
        rows.append([
            stage,
            str(int(counters.get("commands_in", 0)) or "-"),
            str(int(counters.get("commands_out", 0)) or "-"),
            f"{int(counters.get('bytes_out', 0)):,}"
            if counters.get("bytes_out") else "-",
            f"{cpu * 1000:.1f} ms" if cpu else "-",
            f"{int(hits)}/{int(hits + misses)}" if (hits or misses) else "-",
        ])
    return rows


@dataclass(frozen=True)
class LatencyStats:
    """Order statistics over a latency sample."""

    count: int
    mean: float
    median: float
    p95: float
    maximum: float

    def row(self, label: str) -> List[str]:
        to_ms = lambda v: f"{v * 1000:.1f} ms"  # noqa: E731
        return [label, str(self.count), to_ms(self.mean),
                to_ms(self.median), to_ms(self.p95), to_ms(self.maximum)]


def latency_stats(samples: Sequence[float]) -> LatencyStats:
    """Summarise latency samples (keystroke echoes, page loads)."""
    if not samples:
        raise ValueError("no samples to summarise")
    ordered = sorted(samples)
    n = len(ordered)

    def quantile(q: float) -> float:
        # Nearest-rank on the sorted sample; robust for small n.
        index = min(n - 1, max(0, round(q * (n - 1))))
        return ordered[index]

    return LatencyStats(
        count=n,
        mean=sum(ordered) / n,
        median=quantile(0.5),
        p95=quantile(0.95),
        maximum=ordered[-1],
    )


def bandwidth_timeline(monitor, bucket: float = 0.5,
                       direction: str = "server->client"
                       ) -> List[Tuple[float, float]]:
    """(time, Mbps) points from a packet trace, bucketed.

    The raw material for a Figure-7-style bandwidth-over-time view.
    """
    if bucket <= 0:
        raise ValueError("bucket must be positive")
    buckets: Dict[int, int] = {}
    for record in monitor.records:
        if record.direction != direction:
            continue
        buckets[int(record.time // bucket)] = \
            buckets.get(int(record.time // bucket), 0) + record.size
    return [(index * bucket, nbytes * 8 / bucket / 1e6)
            for index, nbytes in sorted(buckets.items())]
