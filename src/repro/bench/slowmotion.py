"""Slow-motion benchmarking measures (paper Section 8.2).

The paper measures the closed systems non-invasively: network traffic
is captured, workload events are spaced far enough apart that each
page/burst is separable in the trace, and the measures below are read
out of it.  For the instrumented clients, modelled client processing
time is added to the network-derived latency (the cross-hatched bars
of Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..audio.sync import audio_quality, playback_quality
from ..net.monitor import PacketMonitor

__all__ = ["PageMeasurement", "WebRunResult", "AVRunResult",
           "measure_page", "combined_av_quality"]


@dataclass
class PageMeasurement:
    """One page load, read from the packet trace."""

    index: int
    click_time: float
    latency: float  # click -> last server->client packet
    latency_with_processing: float
    bytes_transferred: int


@dataclass
class WebRunResult:
    """One platform x network web benchmark run."""

    platform: str
    network: str
    pages: List[PageMeasurement] = field(default_factory=list)

    @property
    def mean_latency(self) -> float:
        return sum(p.latency for p in self.pages) / len(self.pages)

    @property
    def mean_latency_with_processing(self) -> float:
        return (sum(p.latency_with_processing for p in self.pages)
                / len(self.pages))

    @property
    def mean_page_bytes(self) -> float:
        return (sum(p.bytes_transferred for p in self.pages)
                / len(self.pages))

    @property
    def total_bytes(self) -> int:
        return sum(p.bytes_transferred for p in self.pages)


@dataclass
class AVRunResult:
    """One platform x network A/V benchmark run."""

    platform: str
    network: str
    frames_sent: int
    frames_received: int
    ideal_duration: float
    actual_duration: float
    bytes_transferred: int
    audio_supported: bool
    audio_quality: float
    full_duration_scale: float = 1.0  # truncated-run extrapolation
    # Mean |audio - video| delivery-delay difference (lip sync), or
    # None when the platform exposes no per-frame timing.
    av_sync_skew_s: Optional[float] = None

    @property
    def av_quality(self) -> float:
        """The combined slow-motion A/V quality measure.

        Video data dominates the combined streams (Section 8.2), so the
        video delivery/stretch product is the headline number; audio
        lateness degrades it only fractionally for audio platforms.
        """
        video = playback_quality(self.frames_received, self.frames_sent,
                                 self.ideal_duration, self.actual_duration)
        if not self.audio_supported:
            return video
        return video * (0.9 + 0.1 * self.audio_quality)

    @property
    def bandwidth_mbps(self) -> float:
        if self.actual_duration <= 0:
            return 0.0
        return self.bytes_transferred * 8 / self.actual_duration / 1e6

    @property
    def total_bytes_full_clip(self) -> float:
        """Bytes extrapolated to the paper's full 34.75 s clip."""
        return self.bytes_transferred * self.full_duration_scale


def measure_page(monitor: PacketMonitor, index: int, click_time: float,
                 end_time: float, processing_time_delta: float
                 ) -> PageMeasurement:
    """Extract one page's slow-motion measures from the trace window."""
    last = monitor.last_packet_time("server->client", before=end_time)
    if last is None or last < click_time:
        latency = 0.0
    else:
        latency = last - click_time
    nbytes = monitor.total_bytes(start=click_time, end=end_time)
    return PageMeasurement(
        index=index,
        click_time=click_time,
        latency=latency,
        latency_with_processing=latency + processing_time_delta,
        bytes_transferred=nbytes,
    )


def combined_av_quality(result: AVRunResult) -> float:
    return result.av_quality
