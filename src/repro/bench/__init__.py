"""The benchmark harness: testbed, platforms, sites, experiments."""

from .analysis import CommandMix, command_mix, latency_stats
from .experiments import (fig2_web_latency, fig3_web_data, fig4_web_remote,
                          fig5_av_quality, fig6_av_data, fig7_av_remote)
from .platforms import PLATFORMS, Platform, make_platform
from .reporting import format_table
from .sites import REMOTE_SITES, site_link
from .slowmotion import AVRunResult, WebRunResult
from .testbed import (AV_PLATFORMS, WEB_PDA_PLATFORMS, WEB_PLATFORMS,
                      run_av_benchmark, run_web_benchmark)

__all__ = [
    "CommandMix",
    "command_mix",
    "latency_stats",
    "Platform",
    "PLATFORMS",
    "make_platform",
    "run_web_benchmark",
    "run_av_benchmark",
    "WEB_PLATFORMS",
    "WEB_PDA_PLATFORMS",
    "AV_PLATFORMS",
    "WebRunResult",
    "AVRunResult",
    "REMOTE_SITES",
    "site_link",
    "format_table",
    "fig2_web_latency",
    "fig3_web_data",
    "fig4_web_remote",
    "fig5_av_quality",
    "fig6_av_data",
    "fig7_av_remote",
]
