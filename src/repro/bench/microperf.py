"""Persistent micro-performance harness (``make bench``).

Times the layers the PR-3 geometry/queue engine rebuilt and later PRs
extended, and writes a machine-readable report (``BENCH_PR10.json`` at
the repo root) continuing the benchmark trajectory future PRs are
gated on:

* **region ops** — the banded :class:`repro.region.Region` against the
  pre-banded :class:`repro.region.NaiveRegion` reference on identical
  random workloads (union build-up, pairwise union/subtract/intersect,
  overlap probing);
* **queue churn** — the tile-indexed :class:`repro.core.CommandQueue`
  against ``_LegacyQueue`` (a faithful replica of the pre-index
  whole-queue-sweep hot path) on add-time eviction and the Section 4.1
  queue-to-queue copy;
* **codec plane** — the PR-8 vectorised kernels against faithful
  replicas of the pre-PR8 per-pixel/per-run Python loops, the adaptive
  batched RAW encode path against per-command always-PNG, and the
  Fig-2 web workload's wire bytes with the content-adaptive encoder
  on vs off on a PDA-class link (including the lossless refresh
  convergence check);
* **pipeline throughput** — wall-clock end-to-end runs of the Fig-2
  web and Fig-5 A/V workloads on the THINC platform, recorded as
  trajectory numbers (no baseline pair — these move PR over PR);
* **fabric scaling** — the PR-6 shard fabric: aggregate prepared-
  command throughput for the same session population on one shard vs
  two (simulated seconds — each shard owns a serial prepare CPU, so
  the scaling number is a property of the architecture, not the host),
  plus the client-observed pause of one live migration;
* **adaptive QoS** — the PR-10 degradation ladder on a 256 kbit/s
  contended link: interactive input-to-update latency against the
  uncontended twin at four cross-traffic duty cycles (the < 2x
  interactivity gate), ladder engagement counters, and the
  byte-identity / pixel-exact-recovery fidelity flags.

Run ``python -m repro.bench.microperf --quick`` for the CI smoke mode,
and ``--validate PATH`` to schema-check an emitted report.  See
``docs/PERF.md`` for how to read and refresh the ``BENCH_*.json``
trail.
"""

from __future__ import annotations

import argparse
import itertools
import json
import random
import sys
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.command_queue import CommandQueue
from ..net import LAN_DESKTOP
from ..protocol.commands import Command, OverwriteClass, SFillCommand
from ..region import NaiveRegion, Rect, Region
from .testbed import run_av_benchmark, run_web_benchmark

__all__ = ["SCHEMA", "SCHEMA_VERSION", "run_suite", "validate_report",
           "main"]

SCHEMA = "thinc-microperf"
SCHEMA_VERSION = 1

# Workload sizes: (full, quick).
_REGION_RECTS = (300, 60)
_QUEUE_BASE_GRID = ((16, 12), (8, 6))      # base commands tiling the screen
_QUEUE_OVERWRITES = (250, 50)
_COPY_QUEUE_GRID = ((20, 15), (8, 6))
_COPY_CALLS = (120, 24)
_WEB_PAGES = (8, 2)
_AV_FRAMES = (48, 10)
_REPEATS = (5, 2)

_SCREEN_W, _SCREEN_H = 1024, 768
_SEED = 54


# -- timing ----------------------------------------------------------------

def _best_of(fn: Callable[[], object], repeats: int) -> float:
    """Best wall-clock seconds over *repeats* runs of *fn*."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def _pair(new_s: float, baseline_s: float) -> Dict[str, float]:
    return {
        "banded_s": new_s,
        "baseline_s": baseline_s,
        "speedup": baseline_s / new_s if new_s > 0 else float("inf"),
    }


# -- region workloads ------------------------------------------------------

def _rect_cloud(rng: random.Random, count: int, max_side: int = 96
                ) -> List[Rect]:
    rects = []
    for _ in range(count):
        w = rng.randint(4, max_side)
        h = rng.randint(4, max_side)
        x = rng.randint(0, _SCREEN_W - w)
        y = rng.randint(0, _SCREEN_H - h)
        rects.append(Rect(x, y, w, h))
    return rects


def _build(impl, rects) -> object:
    region = impl()
    for r in rects:
        region.add(r)
    return region


def _bench_region(quick: bool, repeats: int) -> Dict[str, Dict[str, float]]:
    count = _REGION_RECTS[quick]
    rng = random.Random(_SEED)
    rects_a = _rect_cloud(rng, count)
    rects_b = _rect_cloud(rng, count)

    out: Dict[str, Dict[str, float]] = {}
    out["union_build"] = _pair(
        _best_of(lambda: _build(Region, rects_a), repeats),
        _best_of(lambda: _build(NaiveRegion, rects_a), repeats))

    pairs = {}
    for impl in (Region, NaiveRegion):
        pairs[impl] = (_build(impl, rects_a), _build(impl, rects_b))

    for name, op in (("union_pair", lambda a, b: a.union(b)),
                     ("subtract_pair", lambda a, b: a.subtract(b)),
                     ("intersect_pair", lambda a, b: a.intersect(b))):
        out[name] = _pair(
            _best_of(lambda op=op: op(*pairs[Region]), repeats),
            _best_of(lambda op=op: op(*pairs[NaiveRegion]), repeats))

    probes = _rect_cloud(rng, 64, max_side=48)

    def _probe(impl):
        a, b = pairs[impl]
        hits = 0
        for rect in probes:
            if a.overlaps(impl.from_rect(rect)):
                hits += 1
        return hits + (1 if a.overlaps(b) else 0)

    out["overlaps_pair"] = _pair(
        _best_of(lambda: _probe(Region), repeats),
        _best_of(lambda: _probe(NaiveRegion), repeats))
    return out


# -- queue workloads -------------------------------------------------------

class _LegacyQueue:
    """The pre-index CommandQueue hot path, preserved for comparison.

    A faithful replica of the pre-PR3 implementation: every add sweeps
    the whole command list with NaiveRegion arithmetic (the production
    queue now consults the tile grid and banded regions instead).  Only
    the methods the microbenches exercise are reproduced.
    """

    def __init__(self):
        self._commands: List[Command] = []
        self._seq = itertools.count()
        self._opaque_cover = NaiveRegion()
        self._tainted = NaiveRegion()

    @staticmethod
    def _opaque_of(command: Command) -> NaiveRegion:
        if command.overwrite_class is OverwriteClass.TRANSPARENT:
            return NaiveRegion()
        return NaiveRegion.from_rect(command.dest)

    def add(self, command: Command) -> Command:
        command.seq = next(self._seq)
        opaque = self._opaque_of(command)
        if not opaque.is_empty:
            self._evict_under(opaque, command)
            self._opaque_cover = self._opaque_cover.union(opaque)
        elif not self._opaque_cover.contains_rect(command.dest):
            self._tainted.add(command.dest)
        merged = self._try_merge_tail(command)
        if merged is None:
            self._commands.append(command)
            merged = command
        return merged

    def _evict_under(self, opaque: NaiveRegion, newcomer: Command) -> None:
        pinned = NaiveRegion()
        own_src = getattr(newcomer, "src_rect", None)
        if own_src is not None:
            pinned.add(own_src)
        for cmd in self._commands:
            src = getattr(cmd, "src_rect", None)
            if src is not None:
                pinned.add(src)
        if pinned:
            opaque = opaque.subtract(pinned)
            if opaque.is_empty:
                return
        kept: List[Command] = []
        for cmd in self._commands:
            if not opaque.overlaps_rect(cmd.dest):
                kept.append(cmd)
                continue
            if cmd.overwrite_class is OverwriteClass.PARTIAL:
                visible = NaiveRegion.from_rect(cmd.dest).subtract(opaque)
                if visible.is_empty:
                    continue
                if visible.area == cmd.dest.area:
                    kept.append(cmd)
                    continue
                fragments = cmd.clipped(list(visible))
                for frag in fragments:
                    frag.seq = cmd.seq
                kept.extend(fragments)
            else:
                if not opaque.contains_rect(cmd.dest):
                    kept.append(cmd)
        self._commands = kept

    def _try_merge_tail(self, command: Command) -> Optional[Command]:
        if not self._commands:
            return None
        tail = self._commands[-1]
        merged = tail.try_merge(command)
        if merged is None:
            return None
        merged.seq = tail.seq
        self._commands[-1] = merged
        return merged

    def commands_for_copy(self, src_rect: Rect, dx: int, dy: int
                          ) -> List[Command]:
        replay = NaiveRegion.from_rect(src_rect).subtract(
            self.uncovered_region(src_rect))
        if replay.is_empty:
            return []
        replay_rects = list(replay)
        out: List[Command] = []
        for cmd in self._commands:
            if not cmd.dest.overlaps(src_rect):
                continue
            for part in cmd.clipped(replay_rects):
                out.append(part.translated(dx, dy))
        return out

    def uncovered_region(self, src_rect: Rect) -> NaiveRegion:
        missing = NaiveRegion.from_rect(src_rect).subtract(
            self._opaque_cover)
        return missing.union(self._tainted.intersect_rect(src_rect))


def _grid_fills(cols: int, rows: int) -> List[SFillCommand]:
    """A screen tiled by solid fills with per-tile colours (no merging)."""
    tile_w = _SCREEN_W // cols
    tile_h = _SCREEN_H // rows
    cmds = []
    for j in range(rows):
        for i in range(cols):
            color = (i % 251, j % 251, (i * 7 + j * 13) % 251, 255)
            cmds.append(SFillCommand(
                Rect(i * tile_w, j * tile_h, tile_w, tile_h), color))
    return cmds


def _bench_queue(quick: bool, repeats: int) -> Dict[str, Dict[str, float]]:
    cols, rows = _QUEUE_BASE_GRID[quick]
    overwrite_count = _QUEUE_OVERWRITES[quick]
    rng = random.Random(_SEED + 1)
    overwrites = _rect_cloud(rng, overwrite_count, max_side=112)

    def _churn(factory):
        queue = factory()
        for cmd in _grid_fills(cols, rows):
            queue.add(cmd)
        for k, rect in enumerate(overwrites):
            queue.add(SFillCommand(rect, (k % 251, (k * 3) % 251, 17, 255)))
        return queue

    out: Dict[str, Dict[str, float]] = {}
    out["evict_churn"] = _pair(
        _best_of(lambda: _churn(CommandQueue), repeats),
        _best_of(lambda: _churn(_LegacyQueue), repeats))

    ccols, crows = _COPY_QUEUE_GRID[quick]
    copy_calls = _COPY_CALLS[quick]
    src_rects = _rect_cloud(random.Random(_SEED + 2), copy_calls,
                            max_side=160)

    def _copies(factory):
        queue = factory()
        for cmd in _grid_fills(ccols, crows):
            queue.add(cmd)
        total = 0
        for rect in src_rects:
            total += len(queue.commands_for_copy(rect, 13, 7))
        return total

    out["commands_for_copy"] = _pair(
        _best_of(lambda: _copies(CommandQueue), repeats),
        _best_of(lambda: _copies(_LegacyQueue), repeats))
    return out


# -- pipeline workloads ----------------------------------------------------

def _bench_pipeline(quick: bool) -> Dict[str, Dict[str, float]]:
    pages = _WEB_PAGES[quick]
    start = time.perf_counter()
    web = run_web_benchmark("THINC", LAN_DESKTOP,
                            network_label="LAN Desktop", page_count=pages)
    web_wall = time.perf_counter() - start

    frames = _AV_FRAMES[quick]
    start = time.perf_counter()
    av = run_av_benchmark("THINC", LAN_DESKTOP,
                          network_label="LAN Desktop", max_frames=frames)
    av_wall = time.perf_counter() - start
    return {
        "fig2_web": {
            "wall_s": web_wall,
            "pages": float(pages),
            "mean_latency_s": web.mean_latency,
        },
        "fig5_av": {
            "wall_s": av_wall,
            "frames": float(frames),
            "av_quality": av.av_quality,
        },
    }


# -- fabric workloads ------------------------------------------------------

_FABRIC_SESSIONS = (8, 4)
_FABRIC_DRAWS = (48, 12)
_FABRIC_W, _FABRIC_H = 256, 192


def _fabric_drain(num_shards: int, sessions: int, draws: int):
    """Simulated seconds for *num_shards* shards to drain a mirrored
    draw burst to *sessions* clients, plus commands delivered.

    Every session gets a distinct viewport (distinct scale keys defeat
    both cache levels), so the burst is prepare-CPU-bound — exactly the
    resource sharding multiplies.
    """
    from ..cluster import ShardCoordinator
    from ..core import THINCClient
    from ..display import WindowServer
    from ..net import Connection, EventLoop

    loop = EventLoop()
    coord = ShardCoordinator(loop, num_shards, _FABRIC_W, _FABRIC_H)
    screens = [WindowServer(_FABRIC_W, _FABRIC_H, driver=s.driver,
                            clock=loop.clock) for s in coord.shards]
    units = []
    for i in range(sessions):
        server = coord.shards[i % num_shards]
        conn = Connection(loop, LAN_DESKTOP)
        # Plain (guard-free) attach: the burst drains to idle, which is
        # what makes the simulated clock a clean drain-time meter.
        server.attach_client(conn, viewport=(_FABRIC_W - 8 * i,
                                             _FABRIC_H - 6 * i))
        THINCClient(loop, conn, headless=True)
        units.append(server.sessions[-1])
    loop.run_until_idle(max_time=30)
    base = loop.now
    sent_before = sum(u.stats["messages_sent"] for u in units)
    rng = np.random.default_rng(_SEED)
    for _ in range(draws):
        # RAW image blocks: the one command class whose prepare stage
        # pays real (simulated) compression CPU, the resource the
        # fabric multiplies.
        x = int(rng.integers(0, _FABRIC_W - 48))
        y = int(rng.integers(0, _FABRIC_H - 36))
        img = rng.integers(0, 256, (36, 48, 4), dtype=np.uint8)
        for ws in screens:  # mirrored on every shard
            ws.put_image(ws.screen, Rect(x, y, 48, 36), img)
    loop.run_until_idle(max_time=300)
    delivered = sum(u.stats["messages_sent"] for u in units) - sent_before
    return loop.now - base, delivered


def _fabric_migration_pause(quick: bool):
    """Client-observed outage of one live migration, in simulated
    seconds (sever -> successor guard reattached), plus transfer size."""
    from ..cluster import ShardCoordinator
    from ..cluster.smoke import SMOKE_CONFIG, scripted_workload
    from ..core.resilience import ResilientClient
    from ..display import WindowServer
    from ..net import Connection, EventLoop
    from ..net.link import LinkParams

    loop = EventLoop()
    coord = ShardCoordinator(loop, 2, 96, 64, resilience=SMOKE_CONFIG)
    link = LinkParams("bench access", bandwidth_bps=100e6, rtt=0.0002)
    for server in coord.shards:
        ws = WindowServer(96, 64, driver=server.driver, clock=loop.clock)
        scripted_workload(loop, ws, end=0.8 if quick else 1.5)

    def dial():
        conn = Connection(loop, link)
        coord.relay.accept(conn)
        return conn

    rc = ResilientClient(loop, dial, config=SMOKE_CONFIG, seed=1)
    rc.start()
    loop.run_until(1.0)
    token = rc.token
    target = (coord.route_token(token) + 1) % 2
    severed_at = loop.now
    coord.migrate(token, target)
    guard = coord.shards[target].resilience.guards[token]
    while guard.detached_at is not None and loop.now < severed_at + 10:
        loop.run_until(loop.now + 0.01)
    pause = loop.now - severed_at
    return pause, coord.transfer_bytes


def _bench_fabric(quick: bool) -> Dict[str, Dict[str, float]]:
    sessions = _FABRIC_SESSIONS[quick]
    draws = _FABRIC_DRAWS[quick]
    start = time.perf_counter()
    one_s, one_sent = _fabric_drain(1, sessions, draws)
    two_s, two_sent = _fabric_drain(2, sessions, draws)
    thr_one = one_sent / one_s
    thr_two = two_sent / two_s
    pause, transfer_bytes = _fabric_migration_pause(quick)
    wall = time.perf_counter() - start
    return {
        "scaling": {
            "sessions": float(sessions),
            "draws": float(draws),
            "one_shard_s": one_s,
            "two_shard_s": two_s,
            "one_shard_msgs_per_s": thr_one,
            "two_shard_msgs_per_s": thr_two,
            "speedup": thr_two / thr_one,
        },
        "migration": {
            "pause_s": pause,
            "transfer_bytes": float(transfer_bytes),
            "wall_s": wall,
        },
    }


# -- fan-out workloads -----------------------------------------------------

_FANOUT_SUBS = (100, 20)
_FANOUT_DRAWS = (40, 10)
_FANOUT_W, _FANOUT_H = 256, 192


def _fanout_rig(subscribers: int, tile_grid=None):
    """One server with *subscribers* broadcast clients attached.

    Mirror subscribers split across two viewport classes (full-size
    and quarter-size) so the prepare-once claim is measured against a
    genuinely heterogeneous wall, not one degenerate class.  With
    ``tile_grid=(cols, rows)`` the clients own wall tiles instead.
    """
    from ..core import THINCClient, THINCServer
    from ..core.governor import ServerBudget
    from ..display import WindowServer
    from ..net import Connection, EventLoop
    from ..protocol import wire

    loop = EventLoop()
    server = THINCServer(
        loop, _FANOUT_W, _FANOUT_H,
        server_budget=ServerBudget(max_sessions=subscribers + 8))
    ws = WindowServer(_FANOUT_W, _FANOUT_H, driver=server.driver,
                      clock=loop.clock)
    for i in range(subscribers):
        conn = Connection(loop, LAN_DESKTOP)
        if tile_grid is None and i % 2:
            viewport = (_FANOUT_W // 2, _FANOUT_H // 2)
        else:
            viewport = (_FANOUT_W, _FANOUT_H)
        server.attach_client(conn, viewport=viewport)
        THINCClient(loop, conn, headless=True)
        session = server.sessions[-1]
        if tile_grid is None:
            server.fanout.subscribe(session)
        else:
            cols, rows = tile_grid
            server.fanout.handle_subscribe(session, wire.SubscribeMessage(
                wire.SUBSCRIBE_TILE, cols, rows, i % (cols * rows)))
    return loop, server, ws


def _fanout_drain(subscribers: int, draws: int, tile_grid=None):
    """Simulated prepare-CPU seconds and delivered message count for a
    RAW draw burst fanned out to *subscribers* clients."""
    from ..region import Rect as _Rect

    loop, server, ws = _fanout_rig(subscribers, tile_grid=tile_grid)
    loop.run_until_idle(max_time=30)
    cpu0 = server.stats["cpu_time"]
    sent0 = sum(s.stats["messages_sent"] for s in server.sessions)
    rng = np.random.default_rng(_SEED + 9)
    for _ in range(draws):
        x = int(rng.integers(0, _FANOUT_W - 48))
        y = int(rng.integers(0, _FANOUT_H - 36))
        img = rng.integers(0, 256, (36, 48, 4), dtype=np.uint8)
        ws.put_image(ws.screen, _Rect(x, y, 48, 36), img)
    loop.run_until_idle(max_time=600)
    cpu = server.stats["cpu_time"] - cpu0
    delivered = sum(s.stats["messages_sent"] for s in server.sessions) - sent0
    return cpu, delivered


def _bench_fanout(quick: bool) -> Dict[str, Dict[str, float]]:
    """The PR-9 broadcast plane: prepare-once-per-class means the CPU
    of a 100-subscriber wall stays within a small constant of a single
    unicast client (the acceptance gate is ``cpu_ratio < 3``)."""
    subscribers = _FANOUT_SUBS[quick]
    draws = _FANOUT_DRAWS[quick]
    start = time.perf_counter()
    single_cpu, single_sent = _fanout_drain(1, draws)
    fanout_cpu, fanout_sent = _fanout_drain(subscribers, draws)
    # A square-ish wall covering every subscriber exactly once.
    cols = max(1, int(round(subscribers ** 0.5)))
    rows = max(1, subscribers // cols)
    wall_cpu, wall_sent = _fanout_drain(cols * rows, draws,
                                        tile_grid=(cols, rows))
    wall = time.perf_counter() - start
    return {
        "broadcast": {
            "subscribers": float(subscribers),
            "draws": float(draws),
            "single_cpu_s": single_cpu,
            "fanout_cpu_s": fanout_cpu,
            "cpu_ratio": fanout_cpu / single_cpu if single_cpu else
            float("inf"),
            "delivered": float(fanout_sent),
        },
        "tile_wall": {
            "cols": float(cols),
            "rows": float(rows),
            "draws": float(draws),
            "cpu_s": wall_cpu,
            "delivered": float(wall_sent),
            "wall_s": wall,
        },
    }


# -- QoS workloads ---------------------------------------------------------

#: The PR-10 acceptance link: a 256 kbit/s thin access pipe.
_QOS_BPS = 256e3
#: Cross-traffic plans of increasing duty cycle as (name, burst_s,
#: period_s).  Each burst holds the delivery head with full drops, so
#: the un-acked window throttles the sender for the burst's duration —
#: duty cycle, not drop probability, sets the contention level.
_QOS_PLANS = (("light", 0.05, 0.30),
              ("moderate", 0.09, 0.24),
              ("heavy", 0.12, 0.20))
_QOS_PLAN_SEED = 11
#: The PR-10 acceptance gate: mean interactive input-to-update latency
#: on a contended link stays within 2x the uncontended run while the
#: ladder sheds video, at every contention level.
_QOS_LATENCY_RATIO_BOUND = 2.0


def _qos_scenario(plan, qos_cfg, end=3.5):
    """The adaptive-QoS acceptance scenario: a 32x18 @ 24 fps clip
    (~166 kbit/s offered, 0.65 of the link) plus typing-echo RAW
    patches on the 256 kbit/s pipe, optionally under a cross-traffic
    fault plan.  Returns per-op latencies plus the ladder counters."""
    from dataclasses import replace as _replace

    from ..core import THINCClient, THINCServer
    from ..display import WindowServer
    from ..net import Connection, EventLoop, PacketMonitor
    from ..net.faults import FaultyConnection
    from ..net.link import PDA_80211G
    from ..video.stream import SyntheticVideoClip

    link = _replace(PDA_80211G, name="256k thin", bandwidth_bps=_QOS_BPS)
    loop = EventLoop()
    mon = PacketMonitor()
    if plan is not None:
        conn = FaultyConnection(loop, link, monitor=mon, plan=plan)
    else:
        conn = Connection(loop, link, monitor=mon)
    server = THINCServer(loop, 96, 64, qos=qos_cfg)
    ws = WindowServer(96, 64, driver=server.driver, clock=loop.clock)
    server.attach_client(conn)
    client = THINCClient(loop, conn)

    clip = SyntheticVideoClip(width=32, height=18, fps=24, duration=end)
    holder = {}

    def begin():
        holder["stream"] = ws.video_create_stream(
            "YV12", clip.width, clip.height, Rect(48, 24, 48, 32))
        put(0)

    def put(i):
        if i >= clip.frame_count:
            ws.video_destroy_stream(holder["stream"])
            return
        ws.video_put_frame(holder["stream"], clip.yv12_frame(i))
        loop.schedule(clip.frame_interval, lambda: put(i + 1))

    loop.schedule_at(0.0, begin)

    times, arrivals, covered = [], [], {}
    orig = client._execute

    def spy(cmd, now):
        # Typing-echo patches only (12x12 RAWs left of the video
        # area; recovery refreshes land at x >= 48).  put_image
        # rasterises in scan-line chunks, so an op arrives once its
        # whole tile has been painted.
        if cmd.kind == "raw" and cmd.dest.width == 12 and cmd.dest.x < 48:
            tile = (cmd.dest.x // 12, cmd.dest.y // 12)
            covered[tile] = covered.get(tile, 0) + cmd.dest.area
            if covered[tile] >= 144:
                covered[tile] = 0
                arrivals.append(now)
        orig(cmd, now)

    client._execute = spy
    rng = np.random.default_rng(5)
    t, idx = 0.1, 0
    while t < end - 0.3:
        x, y = (idx % 4) * 12, (idx // 4) * 12
        patch = rng.integers(0, 256, (12, 12, 4), dtype=np.uint8)
        patch[..., 3] = 255

        def op(x=x, y=y, patch=patch):
            client.send_input("key", x, y)
            ws.put_image(ws.screen, Rect(x, y, 12, 12), patch)

        loop.schedule_at(t, op)
        times.append(t)
        t += 0.16
        idx += 1
    loop.run_until_idle(max_time=300)

    latencies = [a - s for s, a in zip(times, arrivals)]
    stats = server.stats
    return {
        "ops": len(times),
        "arrived": len(arrivals),
        "mean_latency_s": (sum(latencies) / len(latencies)
                           if latencies else float("inf")),
        "rungs_down": stats.get("qos_rungs_down", 0),
        "rungs_up": stats.get("qos_rungs_up", 0),
        "recoveries": stats.get("qos_recoveries", 0),
        "frames_dropped": stats.get("qos_frames_dropped", 0),
        "frames_degraded": stats.get("qos_frames_degraded", 0),
        "vframe_bytes": client.stats["bytes_by_kind"].get("vframe", 0),
        "final_rung": server.sessions[0].qos_rung,
        "trace": [(r.time, r.direction, r.size) for r in mon.records],
        "fb": client.fb,
        "pixel_identical": (client.fb is not None
                            and client.fb.same_as(ws.screen.fb)),
    }


def _bench_qos(quick: bool) -> Dict[str, Dict[str, float]]:
    """The PR-10 adaptive-QoS plane: the acceptance scenario at four
    contention levels.  ``clean`` doubles as the latency baseline and
    the byte-identity fidelity check against a fixed-rate twin; the
    ``heavy`` level must engage the ladder and still ramp back to a
    pixel-exact rung-0 finish."""
    from ..core.qos import QosConfig
    from ..net.faults import FaultPlan

    start = time.perf_counter()

    def cfg():
        return QosConfig(seed=7, recover_polls=3, recover_jitter=1)

    fixed = _qos_scenario(None, None)       # the fixed-rate twin
    clean = _qos_scenario(None, cfg())
    byte_identical = (clean["trace"] == fixed["trace"]
                      and clean["fb"] is not None
                      and fixed["fb"] is not None
                      and clean["fb"].same_as(fixed["fb"]))

    def entry(res):
        return {
            "ops": float(res["ops"]),
            "mean_latency_s": res["mean_latency_s"],
            "latency_ratio": res["mean_latency_s"] / clean["mean_latency_s"],
            "rungs_down": float(res["rungs_down"]),
            "rungs_up": float(res["rungs_up"]),
            "recoveries": float(res["recoveries"]),
            "frames_dropped": float(res["frames_dropped"]),
            "frames_degraded": float(res["frames_degraded"]),
            "vframe_bytes": float(res["vframe_bytes"]),
        }

    section = {"clean": entry(clean)}
    heavy = clean
    for name, burst, period in _QOS_PLANS:
        plan = FaultPlan.bursty_cross_traffic(
            _QOS_PLAN_SEED, start=0.3, duration=1.2,
            period=period, burst=burst, drop_rate=1.0)
        heavy = _qos_scenario(plan, cfg())
        section[name] = entry(heavy)
    section["fidelity"] = {
        "byte_identical_uncontended": float(byte_identical),
        "recovered_pixel_exact": float(heavy["pixel_identical"]
                                       and heavy["final_rung"] == 0),
        "final_rung": float(heavy["final_rung"]),
        "wall_s": time.perf_counter() - start,
    }
    return section


# -- codec workloads -------------------------------------------------------

_PAETH_DIMS = ((96, 128), (32, 48))    # (h, w): full, quick
_CODEC_TILE = 128                      # batch-encode tile edge
_CODEC_ENCODE_PAGES = (4, 1)           # pages tiled for the encode bench
_CODEC_WEB_PAGES = (6, 2)
#: The wire benchmark's link: the 802.11g PDA path squeezed to the
#: effective rate of a loaded/far-from-AP wireless segment — slow
#: enough that a Fig-2 page outlives the inter-click gap, so the
#: posture probe sees a genuinely saturated downlink.
_CODEC_WIRE_BPS = 256e3


def _legacy_paeth_unfilter(filtered: np.ndarray, height: int, width: int,
                           channels: int) -> np.ndarray:
    """The pre-PR8 per-pixel interpreted unfilter loop, kept verbatim as
    the baseline the wavefront kernel is measured against."""
    flat = filtered.reshape(height, width * channels)
    out = np.zeros_like(flat)
    c = channels
    for y in range(height):
        for xi in range(flat.shape[1]):
            a = int(out[y, xi - c]) if xi >= c else 0
            b = int(out[y - 1, xi]) if y >= 1 else 0
            cc = int(out[y - 1, xi - c]) if (y >= 1 and xi >= c) else 0
            p = a + b - cc
            pa, pb, pc = abs(p - a), abs(p - b), abs(p - cc)
            if pa <= pb and pa <= pc:
                pred = a
            elif pb <= pc:
                pred = b
            else:
                pred = cc
            out[y, xi] = (int(flat[y, xi]) + pred) & 0xFF
    return out.reshape(height, width, channels)


def _legacy_rle_encode(pixels: np.ndarray) -> bytes:
    """The pre-PR8 per-run Python RLE loop (body only, no dimensions)."""
    flat = np.ascontiguousarray(pixels, dtype=np.uint8).reshape(-1, 4)
    view = flat.view(np.uint32).ravel()
    out = bytearray()
    if len(view):
        changes = np.flatnonzero(np.diff(view)) + 1
        starts = np.concatenate(([0], changes))
        ends = np.concatenate((changes, [len(view)]))
        for s, e in zip(starts, ends):
            run = e - s
            while run > 0:
                chunk = min(run, 0xFFFF)
                out += int(chunk).to_bytes(2, "big")
                out += flat[s].tobytes()
                run -= chunk
    return bytes(out)


def _page_tiles(pages_n: int, tile: int) -> List[np.ndarray]:
    """The Fig-2 page set rendered and cut into square tiles — the real
    content mix (solid background, flat chrome, text, images) the
    prepare plane sees on a full-screen drain."""
    from ..display import WindowServer
    from ..workloads.web import WebBrowserApp, make_page_set

    server = WindowServer(_SCREEN_W, _SCREEN_H)
    pages = make_page_set(count=pages_n, width=_SCREEN_W,
                          height=_SCREEN_H, seed=_SEED)
    app = WebBrowserApp(server, pages)
    tiles: List[np.ndarray] = []
    for index in range(pages_n):
        app.render_page(index)
        screen = server.screen.fb.data
        for y in range(0, _SCREEN_H - tile + 1, tile):
            for x in range(0, _SCREEN_W - tile + 1, tile):
                tiles.append(np.ascontiguousarray(
                    screen[y:y + tile, x:x + tile]))
    return tiles


def _busiest_text_tile(tiles: List[np.ndarray]) -> np.ndarray:
    """The tile with the most RLE runs that is still run-structured
    (at most one run per two pixels) — the content where the per-run
    legacy loop hurts most without degenerating into noise."""
    best, best_runs = tiles[0], -1
    for tile in tiles:
        view = tile.reshape(-1, 4).view(np.uint32).ravel()
        runs = int(np.count_nonzero(view[1:] != view[:-1])) + 1
        if best_runs < runs <= len(view) // 2:
            best, best_runs = tile, runs
    return best


def _adaptive_batch_encode(blocks: List[np.ndarray], posture) -> int:
    """One drain through the adaptive batched encode path under
    *posture*; returns the total encoded output bytes (the payload work
    mirrors PreparePlane.submit_batch: classify + select per block,
    fused batch filter for the PNG group, SFILL demotion for solid
    blocks)."""
    from ..codec import Encoding, EncoderPolicy
    from ..protocol import compression

    policy = EncoderPolicy()
    choices = [policy.select(b, posture) for b in blocks]
    total = 0
    png_blocks = [b for b, ch in zip(blocks, choices)
                  if ch.solid_color is None and ch.encoding is Encoding.PNG]
    if png_blocks:
        total += sum(len(p) for p in
                     compression.png_compress_batch(png_blocks))
    for block, choice in zip(blocks, choices):
        if choice.solid_color is not None:
            total += 4  # an SFILL colour replaces the payload outright
        elif choice.encoding is Encoding.NONE:
            total += len(block.tobytes())
        elif choice.encoding is Encoding.RLE:
            total += len(compression.rle_compress(block))
        elif choice.encoding is Encoding.LOSSY:
            total += len(compression.lossy_compress(block))
    return total


def _web_wire_run(quick: bool, adaptive: bool):
    """One Fig-2-style web run on a congested PDA-class link; returns
    (server->client bytes, pixel-identical after a final full refresh).

    Page loads outlive the inter-click gap on the constrained link, so
    the adaptive server's posture probe flips to degraded (lossy)
    exactly while it matters; the final refresh happens on an idle
    link, in lossless posture, and must converge the client byte-exact
    — the convergence half of the adaptive contract.
    """
    from dataclasses import replace

    from ..net import PDA_80211G, EventLoop, PacketMonitor
    from ..workloads.web import WebBrowserApp, make_page_set
    from .platforms import make_platform

    pages_n = _CODEC_WEB_PAGES[quick]
    link = replace(PDA_80211G, bandwidth_bps=_CODEC_WIRE_BPS,
                   name=f"{PDA_80211G.name} (congested)")
    loop = EventLoop()
    monitor = PacketMonitor()
    platform = make_platform("THINC", loop, link, monitor=monitor,
                             width=_SCREEN_W, height=_SCREEN_H,
                             headless=False, adaptive_encoding=adaptive)
    pages = make_page_set(count=pages_n, width=_SCREEN_W, height=_SCREEN_H,
                          seed=_SEED)
    browser = WebBrowserApp(platform.window_server, pages)
    state = {"next_page": 0}

    def on_input(x: int, y: int) -> None:
        index = state["next_page"]
        if index >= len(pages):
            return
        state["next_page"] = index + 1
        delay = browser.processing_delay(pages[index])
        loop.schedule(delay, lambda: browser.render_page(index))

    platform.set_input_handler(on_input)
    # Clicks land on a fixed cadence — a user skimming pages does not
    # wait for the slow link to finish painting, so page drains overlap
    # the next request and the posture probe sees the congestion.
    start = loop.now
    for index in range(pages_n):
        click = start + 0.75 * (index + 1)
        link_x, link_y = browser.link_position(max(index - 1, 0))
        loop.schedule_at(click, lambda x=link_x, y=link_y:
                         platform.send_client_input(x, y))
    loop.run_until_idle(max_time=start + 30.0 * pages_n)
    # Let the posture window cool on the drained link before asking for
    # the refresh: convergence is defined on an *idle* link, where the
    # adaptive ladder sits at its lossless floor.
    loop.schedule(1.0, lambda: None)
    loop.run_until_idle(max_time=loop.now + 60.0)
    # Refresh convergence: a full-screen refresh requested on the now
    # idle link (lossless posture) must leave the client byte-exact.
    platform.client.request_refresh(Rect(0, 0, _SCREEN_W, _SCREEN_H))
    loop.run_until_idle(max_time=loop.now + 60.0)
    identical = platform.client.fb is not None and \
        platform.client.fb.same_as(platform.window_server.screen.fb)
    # The refresh bytes count: lossy savings only matter if the later
    # lossless convergence does not hand them all back.
    return monitor.total_bytes("server->client"), identical


def _bench_codec(quick: bool, repeats: int) -> Dict[str, Dict[str, float]]:
    from ..codec import kernels

    h, w = _PAETH_DIMS[quick]
    rng = np.random.default_rng(_SEED + 4)
    img = rng.integers(0, 256, (h, w, 4), dtype=np.uint8)
    filtered = kernels.paeth_filter(img)
    out: Dict[str, Dict[str, float]] = {}
    out["paeth_unfilter"] = _pair(
        _best_of(lambda: kernels.paeth_unfilter(filtered, h, w, 4),
                 repeats),
        _best_of(lambda: _legacy_paeth_unfilter(filtered, h, w, 4),
                 max(1, repeats - 3)))

    tiles = _page_tiles(_CODEC_ENCODE_PAGES[quick], _CODEC_TILE)
    text_tile = _busiest_text_tile(tiles)
    out["rle_encode"] = _pair(
        _best_of(lambda: kernels.rle_encode(text_tile), repeats),
        _best_of(lambda: _legacy_rle_encode(text_tile),
                 max(1, repeats - 3)))

    # The batched RAW path on a full-screen drain of the Fig-2 pages,
    # in the idle-LAN (plentiful) posture a desktop thin client sits in
    # most of the time, against the pre-PR prepare kernel: PNG-model
    # DEFLATE for every block, one call per command.
    from ..codec import LinkPosture
    from ..protocol import compression
    bytes_in = float(sum(t.nbytes for t in tiles))
    new_s = _best_of(
        lambda: _adaptive_batch_encode(tiles, LinkPosture.PLENTIFUL),
        repeats)
    lossless_s = _best_of(
        lambda: _adaptive_batch_encode(tiles, LinkPosture.LOSSLESS),
        repeats)
    base_s = _best_of(
        lambda: sum(len(compression.png_compress(t)) for t in tiles),
        repeats)
    out["batch_raw_encode"] = {
        "blocks": float(len(tiles)),
        "bytes_in": bytes_in,
        "new_bytes_per_s": bytes_in / new_s,
        "lossless_bytes_per_s": bytes_in / lossless_s,
        "baseline_bytes_per_s": bytes_in / base_s,
        "speedup": base_s / new_s if new_s > 0 else float("inf"),
    }

    adaptive_bytes, adaptive_ok = _web_wire_run(quick, adaptive=True)
    png_bytes, png_ok = _web_wire_run(quick, adaptive=False)
    out["adaptive_wire"] = {
        "pages": float(_CODEC_WEB_PAGES[quick]),
        "adaptive_bytes": float(adaptive_bytes),
        "png_bytes": float(png_bytes),
        "reduction": png_bytes / adaptive_bytes if adaptive_bytes else
        float("inf"),
        "fidelity_identical_after_refresh": float(adaptive_ok and png_ok),
    }
    return out


# -- report ----------------------------------------------------------------

def run_suite(quick: bool = False) -> Dict:
    """Run every microbench and return the report dictionary."""
    repeats = _REPEATS[quick]
    report = {
        "schema": SCHEMA,
        "version": SCHEMA_VERSION,
        "pr": "PR10",
        "quick": quick,
        "python": sys.version.split()[0],
        "params": {
            "region_rects": _REGION_RECTS[quick],
            "queue_base_commands": (_QUEUE_BASE_GRID[quick][0]
                                    * _QUEUE_BASE_GRID[quick][1]),
            "queue_overwrites": _QUEUE_OVERWRITES[quick],
            "copy_calls": _COPY_CALLS[quick],
            "repeats": repeats,
            "seed": _SEED,
        },
        "results": {
            "region": _bench_region(quick, repeats),
            "queue": _bench_queue(quick, repeats),
            "codec": _bench_codec(quick, repeats),
            "pipeline": _bench_pipeline(quick),
            "fabric": _bench_fabric(quick),
            "fanout": _bench_fanout(quick),
            "qos": _bench_qos(quick),
        },
    }
    return report


_PAIRED = {
    "region": ("union_build", "union_pair", "subtract_pair",
               "intersect_pair", "overlaps_pair"),
    "queue": ("evict_churn", "commands_for_copy"),
    "codec": ("paeth_unfilter", "rle_encode"),
}
_CODEC_KEYS = {
    "batch_raw_encode": ("blocks", "bytes_in", "new_bytes_per_s",
                         "lossless_bytes_per_s", "baseline_bytes_per_s",
                         "speedup"),
    "adaptive_wire": ("pages", "adaptive_bytes", "png_bytes", "reduction",
                      "fidelity_identical_after_refresh"),
}
_PIPELINE_KEYS = {
    "fig2_web": ("wall_s", "pages", "mean_latency_s"),
    "fig5_av": ("wall_s", "frames", "av_quality"),
}
_FABRIC_KEYS = {
    "scaling": ("sessions", "draws", "one_shard_s", "two_shard_s",
                "one_shard_msgs_per_s", "two_shard_msgs_per_s", "speedup"),
    "migration": ("pause_s", "transfer_bytes", "wall_s"),
}
_FANOUT_KEYS = {
    "broadcast": ("subscribers", "draws", "single_cpu_s", "fanout_cpu_s",
                  "cpu_ratio", "delivered"),
    "tile_wall": ("cols", "rows", "draws", "cpu_s", "delivered", "wall_s"),
}
#: The PR-9 acceptance gate on the broadcast section.
_FANOUT_CPU_RATIO_BOUND = 3.0
_QOS_LEVEL_KEYS = ("ops", "mean_latency_s", "latency_ratio", "rungs_down",
                   "rungs_up", "recoveries", "frames_dropped",
                   "frames_degraded", "vframe_bytes")
_QOS_KEYS = {
    "clean": _QOS_LEVEL_KEYS,
    "light": _QOS_LEVEL_KEYS,
    "moderate": _QOS_LEVEL_KEYS,
    "heavy": _QOS_LEVEL_KEYS,
    "fidelity": ("byte_identical_uncontended", "recovered_pixel_exact",
                 "final_rung", "wall_s"),
}


def validate_report(report) -> List[str]:
    """Schema-check a microperf report; returns a list of problems."""
    problems: List[str] = []

    def _need(mapping, key, kind, where):
        value = mapping.get(key) if isinstance(mapping, dict) else None
        if not isinstance(value, kind) or isinstance(value, bool) != (
                kind is bool):
            problems.append(f"{where}.{key}: expected {kind.__name__}, "
                            f"got {type(value).__name__}")
            return None
        return value

    if not isinstance(report, dict):
        return ["report is not a JSON object"]
    if report.get("schema") != SCHEMA:
        problems.append(f"schema: expected {SCHEMA!r}")
    if report.get("version") != SCHEMA_VERSION:
        problems.append(f"version: expected {SCHEMA_VERSION}")
    _need(report, "quick", bool, "report")
    _need(report, "python", str, "report")
    results = _need(report, "results", dict, "report")
    if results is None:
        return problems
    for group, names in _PAIRED.items():
        section = _need(results, group, dict, "results")
        if section is None:
            continue
        for name in names:
            entry = _need(section, name, dict, f"results.{group}")
            if entry is None:
                continue
            for field in ("banded_s", "baseline_s", "speedup"):
                value = _need(entry, field, (int, float),
                              f"results.{group}.{name}")
                if value is not None and value <= 0:
                    problems.append(
                        f"results.{group}.{name}.{field}: must be positive")
    codec = _need(results, "codec", dict, "results")
    if codec is not None:
        for name, fields in _CODEC_KEYS.items():
            entry = _need(codec, name, dict, "results.codec")
            if entry is None:
                continue
            for field in fields:
                value = _need(entry, field, (int, float),
                              f"results.codec.{name}")
                if value is not None and value <= 0:
                    problems.append(
                        f"results.codec.{name}.{field}: must be positive")
    pipeline = _need(results, "pipeline", dict, "results")
    if pipeline is not None:
        for name, fields in _PIPELINE_KEYS.items():
            entry = _need(pipeline, name, dict, "results.pipeline")
            if entry is None:
                continue
            for field in fields:
                _need(entry, field, (int, float),
                      f"results.pipeline.{name}")
    fabric = _need(results, "fabric", dict, "results")
    if fabric is not None:
        for name, fields in _FABRIC_KEYS.items():
            entry = _need(fabric, name, dict, "results.fabric")
            if entry is None:
                continue
            for field in fields:
                value = _need(entry, field, (int, float),
                              f"results.fabric.{name}")
                if value is not None and value <= 0:
                    problems.append(
                        f"results.fabric.{name}.{field}: must be positive")
    fanout = _need(results, "fanout", dict, "results")
    if fanout is not None:
        for name, fields in _FANOUT_KEYS.items():
            entry = _need(fanout, name, dict, "results.fanout")
            if entry is None:
                continue
            for field in fields:
                value = _need(entry, field, (int, float),
                              f"results.fanout.{name}")
                if value is not None and value <= 0:
                    problems.append(
                        f"results.fanout.{name}.{field}: must be positive")
        broadcast = fanout.get("broadcast")
        if isinstance(broadcast, dict):
            ratio = broadcast.get("cpu_ratio")
            if isinstance(ratio, (int, float)) and \
                    ratio >= _FANOUT_CPU_RATIO_BOUND:
                problems.append(
                    "results.fanout.broadcast.cpu_ratio: "
                    f"{ratio:.2f} breaches the < "
                    f"{_FANOUT_CPU_RATIO_BOUND:g}x fan-out gate")
    qos = _need(results, "qos", dict, "results")
    if qos is not None:
        for name, fields in _QOS_KEYS.items():
            section = _need(qos, name, dict, "results.qos")
            if section is None:
                continue
            for field in fields:
                _need(section, field, (int, float),
                      f"results.qos.{name}")
        for name in ("light", "moderate", "heavy"):
            section = qos.get(name)
            if not isinstance(section, dict):
                continue
            ratio = section.get("latency_ratio")
            if isinstance(ratio, (int, float)) and \
                    ratio >= _QOS_LATENCY_RATIO_BOUND:
                problems.append(
                    f"results.qos.{name}.latency_ratio: "
                    f"{ratio:.2f} breaches the < "
                    f"{_QOS_LATENCY_RATIO_BOUND:g}x interactivity gate")
        fidelity = qos.get("fidelity")
        if isinstance(fidelity, dict):
            for flag in ("byte_identical_uncontended",
                         "recovered_pixel_exact"):
                value = fidelity.get(flag)
                if isinstance(value, (int, float)) and value != 1:
                    problems.append(
                        f"results.qos.fidelity.{flag}: expected 1")
    return problems


def _summarize(report: Dict) -> str:
    lines = []
    results = report["results"]
    for group in ("region", "queue"):
        for name, entry in results[group].items():
            lines.append(f"{group}.{name:<20} banded {entry['banded_s']:.5f}s"
                         f"  baseline {entry['baseline_s']:.5f}s"
                         f"  speedup {entry['speedup']:.1f}x")
    codec = results["codec"]
    for name in _PAIRED["codec"]:
        entry = codec[name]
        lines.append(f"codec.{name:<20} vector {entry['banded_s']:.5f}s"
                     f"  loop {entry['baseline_s']:.5f}s"
                     f"  speedup {entry['speedup']:.1f}x")
    batch = codec["batch_raw_encode"]
    lines.append(
        f"codec.batch_raw_encode adaptive(lan) "
        f"{batch['new_bytes_per_s'] / 1e6:.1f} MB/s"
        f"  adaptive(lossless) "
        f"{batch['lossless_bytes_per_s'] / 1e6:.1f} MB/s"
        f"  always-PNG {batch['baseline_bytes_per_s'] / 1e6:.1f} MB/s"
        f"  speedup {batch['speedup']:.1f}x")
    wire_ = codec["adaptive_wire"]
    lines.append(
        f"codec.adaptive_wire   adaptive "
        f"{wire_['adaptive_bytes'] / 1e6:.2f} MB"
        f"  always-PNG {wire_['png_bytes'] / 1e6:.2f} MB"
        f"  reduction {wire_['reduction']:.2f}x"
        f"  refresh-identical="
        f"{bool(wire_['fidelity_identical_after_refresh'])}")
    for name, entry in results["pipeline"].items():
        detail = ", ".join(f"{k}={v:.4g}" for k, v in entry.items()
                           if k != "wall_s")
        lines.append(f"pipeline.{name:<18} wall {entry['wall_s']:.2f}s"
                     f"  ({detail})")
    fabric = results["fabric"]
    scaling, migration = fabric["scaling"], fabric["migration"]
    lines.append(
        f"fabric.scaling        1 shard {scaling['one_shard_s']:.3f}s sim"
        f"  2 shards {scaling['two_shard_s']:.3f}s sim"
        f"  aggregate speedup {scaling['speedup']:.2f}x")
    lines.append(
        f"fabric.migration      pause {migration['pause_s'] * 1000:.0f}ms"
        f" sim  transfer {migration['transfer_bytes']:.0f}B")
    fanout = results["fanout"]
    broadcast, tile_wall = fanout["broadcast"], fanout["tile_wall"]
    lines.append(
        f"fanout.broadcast      {broadcast['subscribers']:.0f} subs"
        f"  single {broadcast['single_cpu_s']:.4f}s sim"
        f"  fanout {broadcast['fanout_cpu_s']:.4f}s sim"
        f"  cpu ratio {broadcast['cpu_ratio']:.2f}x"
        f" (< {_FANOUT_CPU_RATIO_BOUND:g} gate)")
    lines.append(
        f"fanout.tile_wall      {tile_wall['cols']:.0f}x"
        f"{tile_wall['rows']:.0f} wall"
        f"  cpu {tile_wall['cpu_s']:.4f}s sim"
        f"  delivered {tile_wall['delivered']:.0f} msgs")
    qos = results["qos"]
    for name in ("clean", "light", "moderate", "heavy"):
        entry = qos[name]
        lines.append(
            f"qos.{name:<17} latency "
            f"{entry['mean_latency_s'] * 1000:.1f}ms sim"
            f"  ratio {entry['latency_ratio']:.2f}x"
            f" (< {_QOS_LATENCY_RATIO_BOUND:g} gate)"
            f"  rungs down/up {entry['rungs_down']:.0f}"
            f"/{entry['rungs_up']:.0f}"
            f"  video shed "
            f"{entry['frames_dropped'] + entry['frames_degraded']:.0f}")
    fid = qos["fidelity"]
    lines.append(
        f"qos.fidelity          uncontended byte-identical="
        f"{bool(fid['byte_identical_uncontended'])}"
        f"  recovered pixel-exact={bool(fid['recovered_pixel_exact'])}"
        f"  final rung {fid['final_rung']:.0f}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.microperf",
        description="THINC micro-performance harness (see docs/PERF.md)")
    parser.add_argument("--quick", action="store_true",
                        help="small workloads for the CI smoke job")
    parser.add_argument("--out", default="BENCH_PR10.json",
                        help="report path (default: %(default)s)")
    parser.add_argument("--validate", metavar="PATH",
                        help="schema-check an existing report and exit")
    parser.add_argument("--fanout-smoke", action="store_true",
                        help="quick fan-out-only run (20 subscribers) plus "
                             "a schema check of the committed report")
    parser.add_argument("--qos-smoke", action="store_true",
                        help="QoS-only acceptance run (four contention "
                             "levels against the 2x interactivity gate) "
                             "plus a schema check of the committed report")
    args = parser.parse_args(argv)

    if args.qos_smoke:
        section = _bench_qos(quick=True)
        for name in ("clean", "light", "moderate", "heavy"):
            entry = section[name]
            print(f"qos.{name:<9} latency "
                  f"{entry['mean_latency_s'] * 1000:.1f}ms sim"
                  f"  ratio {entry['latency_ratio']:.2f}x"
                  f"  rungs down/up {entry['rungs_down']:.0f}"
                  f"/{entry['rungs_up']:.0f}"
                  f"  video shed {entry['frames_dropped'] + entry['frames_degraded']:.0f}")
        fid = section["fidelity"]
        print(f"qos.fidelity  uncontended byte-identical="
              f"{bool(fid['byte_identical_uncontended'])}"
              f"  recovered pixel-exact="
              f"{bool(fid['recovered_pixel_exact'])}"
              f"  final rung {fid['final_rung']:.0f}")
        failures = []
        for name in ("light", "moderate", "heavy"):
            ratio = section[name]["latency_ratio"]
            if ratio >= _QOS_LATENCY_RATIO_BOUND:
                failures.append(f"{name}: latency_ratio {ratio:.2f} >= "
                                f"{_QOS_LATENCY_RATIO_BOUND:g}")
        if section["heavy"]["rungs_down"] < 1:
            failures.append("heavy: the ladder never engaged")
        if fid["byte_identical_uncontended"] != 1:
            failures.append("clean: qos-on run diverged from the "
                            "fixed-rate twin on the wire")
        if fid["recovered_pixel_exact"] != 1:
            failures.append("heavy: no pixel-exact recovery to rung 0")
        if failures:
            for failure in failures:
                print(f"qos smoke: {failure}", file=sys.stderr)
            return 1
        try:
            with open(args.out) as handle:
                report = json.load(handle)
        except OSError as exc:
            print(f"qos smoke: cannot read {args.out}: {exc}",
                  file=sys.stderr)
            return 1
        problems = validate_report(report)
        if problems:
            for problem in problems:
                print(f"invalid: {problem}", file=sys.stderr)
            return 1
        print(f"{args.out}: valid {SCHEMA} v{SCHEMA_VERSION} report")
        return 0

    if args.fanout_smoke:
        section = _bench_fanout(quick=True)
        broadcast = section["broadcast"]
        print(f"fanout.broadcast  {broadcast['subscribers']:.0f} subs"
              f"  single {broadcast['single_cpu_s']:.4f}s sim"
              f"  fanout {broadcast['fanout_cpu_s']:.4f}s sim"
              f"  cpu ratio {broadcast['cpu_ratio']:.2f}x")
        tile_wall = section["tile_wall"]
        print(f"fanout.tile_wall  {tile_wall['cols']:.0f}x"
              f"{tile_wall['rows']:.0f} wall  cpu {tile_wall['cpu_s']:.4f}s"
              f" sim  delivered {tile_wall['delivered']:.0f} msgs")
        if broadcast["cpu_ratio"] >= _FANOUT_CPU_RATIO_BOUND:
            print(f"fanout smoke: cpu_ratio {broadcast['cpu_ratio']:.2f} "
                  f">= {_FANOUT_CPU_RATIO_BOUND:g}", file=sys.stderr)
            return 1
        try:
            with open(args.out) as handle:
                report = json.load(handle)
        except OSError as exc:
            print(f"fanout smoke: cannot read {args.out}: {exc}",
                  file=sys.stderr)
            return 1
        problems = validate_report(report)
        if problems:
            for problem in problems:
                print(f"invalid: {problem}", file=sys.stderr)
            return 1
        print(f"{args.out}: valid {SCHEMA} v{SCHEMA_VERSION} report")
        return 0

    if args.validate:
        with open(args.validate) as handle:
            report = json.load(handle)
        problems = validate_report(report)
        if problems:
            for problem in problems:
                print(f"invalid: {problem}", file=sys.stderr)
            return 1
        print(f"{args.validate}: valid {SCHEMA} v{SCHEMA_VERSION} report")
        return 0

    report = run_suite(quick=args.quick)
    problems = validate_report(report)
    if problems:  # a harness bug, not a perf regression
        for problem in problems:
            print(f"internal schema error: {problem}", file=sys.stderr)
        return 2
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(_summarize(report))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
