"""Uniform platform adapters for the benchmark testbed.

Every system under test — THINC and the seven baselines — is wrapped in
a :class:`Platform` exposing the same surface: a window server to drive
with application workloads, a client-input path, an audio sink, and the
client-side statistics slow-motion benchmarking reads.  The local PC is
handled analytically (:mod:`repro.baselines.localpc`) and has no
Platform.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..baselines import (ICA_AUDIO_COMPRESSION, MIN_VIEWPORT,
                         NX_SYNC_EVERY, RDP_AUDIO_COMPRESSION,
                         RELAY_EXTRA_RTT,
                         X_SYNC_EVERY, BaselineClient, ClientCosts,
                         ForwardServer, GoToMyPCEncoder, NXPricer,
                         OrdersPricer, ScrapeServer, SunRayEncoder,
                         VncEncoder, price_x_command)
from ..core import THINCClient, THINCServer
from ..display import WindowServer
from ..net import Connection, EventLoop, LinkParams, PacketMonitor

__all__ = ["Platform", "THINCPlatform", "VNCPlatform", "GoToMyPCPlatform",
           "SunRayPlatform", "XPlatform", "NXPlatform", "RDPPlatform",
           "ICAPlatform", "PLATFORMS", "make_platform"]

# Client-side scaling cost on a weak device, seconds per scaled pixel
# (the "CPU and bandwidth-limited environment of mobile devices"): a
# handheld-class CPU rescales roughly a megapixel per second, which is
# what collapses ICA's PDA video quality in Figure 5.
CLIENT_RESIZE_COST = 8e-7


class Platform:
    """Base adapter: owns the connection, window server and client."""

    name = "base"
    supports_audio = True
    supports_video = True
    color_depth = 24
    resize_model = "none"  # none | clip | client | server

    def __init__(self, loop: EventLoop, link: LinkParams,
                 monitor: Optional[PacketMonitor] = None,
                 width: int = 1024, height: int = 768,
                 viewport: Optional[Tuple[int, int]] = None,
                 wan_mode: bool = False,
                 send_buffer: Optional[int] = None):
        self.loop = loop
        self.link = self._effective_link(link)
        self.monitor = monitor if monitor is not None else PacketMonitor()
        self.width = width
        self.height = height
        self.viewport = self._effective_viewport(viewport)
        self.wan_mode = wan_mode
        self.connection = Connection(loop, self.link, monitor=self.monitor,
                                     send_buffer=send_buffer)
        self.window_server = WindowServer(width, height, clock=loop.clock)
        self._build()

    # -- subclass hooks --------------------------------------------------------

    def _effective_link(self, link: LinkParams) -> LinkParams:
        return link

    def _effective_viewport(self, viewport):
        return viewport

    def _build(self) -> None:
        raise NotImplementedError

    # -- uniform surface -------------------------------------------------------

    def send_client_input(self, x: int, y: int,
                          kind: str = "mouse-click") -> None:
        raise NotImplementedError

    def set_input_handler(self, handler: Callable[[int, int], None]) -> None:
        raise NotImplementedError

    def submit_audio(self, timestamp: float, samples: bytes) -> None:
        """Audio sink; platforms without audio support drop the data."""

    # -- client statistics --------------------------------------------------------

    def bytes_transferred(self) -> int:
        return self.monitor.total_bytes()

    def last_update_time(self) -> float:
        raise NotImplementedError

    def client_processing_time(self) -> float:
        raise NotImplementedError

    def video_frames_received(self) -> int:
        raise NotImplementedError

    def video_frame_times(self) -> Tuple[Optional[float], Optional[float]]:
        raise NotImplementedError

    def audio_arrivals(self):
        return []

    def audio_chunks_received(self) -> int:
        return 0

    def video_arrivals(self, frame_interval: float):
        """Default: no per-frame timing (baseline clients track tags
        without per-frame history)."""
        return []


class THINCPlatform(Platform):
    """The system under study, wrapped for the testbed."""

    name = "THINC"
    resize_model = "server"

    def __init__(self, *args, headless: bool = True,
                 compress_raw: bool = True, offscreen_awareness: bool = True,
                 merge: bool = True, scheduler_factory=None,
                 adaptive_encoding: bool = False,
                 **kwargs):
        self._headless = headless
        self._thinc_opts = dict(compress_raw=compress_raw,
                                offscreen_awareness=offscreen_awareness,
                                merge=merge,
                                adaptive_encoding=adaptive_encoding)
        if scheduler_factory is not None:
            self._thinc_opts["scheduler_factory"] = scheduler_factory
        super().__init__(*args, **kwargs)

    def _build(self) -> None:
        self.server = THINCServer(self.loop, self.width, self.height,
                                  **self._thinc_opts)
        self.window_server.driver = self.server.driver
        self.server.attach_client(self.connection, viewport=self.viewport)
        self.client = THINCClient(self.loop, self.connection,
                                  headless=self._headless)
        self._input_handler = None
        self.server.input_handler = self._dispatch_input

    def _dispatch_input(self, session, msg) -> None:
        from ..display.driver import InputEvent

        event = InputEvent(msg.kind, msg.x, msg.y, msg.time)
        self.window_server.inject_input(event)
        if self._input_handler is not None:
            self._input_handler(msg.x, msg.y)

    def send_client_input(self, x, y, kind="mouse-click"):
        self.client.send_input(kind, x, y)

    def set_input_handler(self, handler):
        self._input_handler = handler

    def submit_audio(self, timestamp, samples):
        self.server.submit_audio(timestamp, samples)

    def last_update_time(self):
        return self.client.stats["last_update_time"]

    def client_processing_time(self):
        return self.client.stats["processing_time"]

    def video_frames_received(self):
        return sum(len(set(v.frame_numbers))
                   for v in self.client.video_stats.values())

    def video_frame_times(self):
        firsts = [v.first_frame_time for v in self.client.video_stats.values()
                  if v.first_frame_time is not None]
        lasts = [v.last_frame_time for v in self.client.video_stats.values()
                 if v.last_frame_time is not None]
        return (min(firsts) if firsts else None,
                max(lasts) if lasts else None)

    def audio_arrivals(self):
        return self.client.audio.arrivals

    def audio_chunks_received(self):
        return self.client.audio.chunks_received

    def video_arrivals(self, frame_interval: float):
        """(server presentation time, arrival) pairs across streams."""
        out = []
        for stats in self.client.video_stats.values():
            out.extend(((no - 1) * frame_interval, t)
                       for no, t in stats.arrivals)
        return out

    # -- server-side pipeline statistics -----------------------------------

    def server_cpu_time(self) -> float:
        """CPU seconds the server spent preparing commands (shared
        prepare plane: charged once per distinct viewport)."""
        return self.server.stats["cpu_time"]

    def pipeline_stats(self):
        """Per-stage counters of the server's command pipeline."""
        return self.server.pipeline_stats()


class _BaselinePlatform(Platform):
    """Common plumbing for the scrape/forward baselines."""

    audio_compression = 1.0
    pull = False
    client_costs: ClientCosts = ClientCosts()

    def send_client_input(self, x, y, kind="mouse-click"):
        self.client.send_input(kind, x, y)

    def set_input_handler(self, handler):
        self.server.input_handler = handler

    def submit_audio(self, timestamp, samples):
        if self.supports_audio:
            self.server.submit_audio(timestamp, samples,
                                     self.audio_compression)

    def last_update_time(self):
        return self.client.stats["last_update_time"]

    def client_processing_time(self):
        return self.client.stats["processing_time"]

    def video_frames_received(self):
        return len(self.client.video_frames_seen)

    def video_frame_times(self):
        return (self.client.first_video_frame_time,
                self.client.last_video_frame_time)

    def audio_arrivals(self):
        return self.client.audio_arrivals

    def audio_chunks_received(self):
        return self.client.stats["audio_chunks"]

    def _make_client(self, resize_factor: float = 1.0) -> BaselineClient:
        costs = self.client_costs
        if self.resize_model == "client" and self.viewport is not None:
            costs = ClientCosts(per_byte=costs.per_byte,
                                per_pixel=costs.per_pixel,
                                per_resize_pixel=CLIENT_RESIZE_COST,
                                fixed=costs.fixed)
        return BaselineClient(self.loop, self.connection, pull=self.pull,
                              costs=costs)


class VNCPlatform(_BaselinePlatform):
    """VNC 4.0: client-pull screen scraping, no audio, viewport clip."""

    name = "VNC"
    supports_audio = False
    pull = True
    resize_model = "clip"

    def _build(self):
        # The clip model does not reduce data in practice: the user must
        # scroll the viewport across the whole session to read it, so
        # every update is eventually transferred at full resolution.
        self.server = ScrapeServer(
            self.loop, self.connection, self.window_server,
            encoder=VncEncoder(adaptive=self.wan_mode), pull=True,
            viewport=self.viewport, resize_mode="none")
        self.client = self._make_client()


class GoToMyPCPlatform(_BaselinePlatform):
    """GoToMyPC 4.1: relay-routed, 8-bit, heavy compression, pull."""

    name = "GoToMyPC"
    supports_audio = False
    color_depth = 8
    pull = True
    resize_model = "client"
    # Heavy client-side decompression.
    client_costs = ClientCosts(per_byte=1.2e-7, per_pixel=6e-9)

    def _effective_link(self, link: LinkParams) -> LinkParams:
        return link.with_relay(RELAY_EXTRA_RTT)

    def _effective_viewport(self, viewport):
        if viewport is None:
            return None
        return (max(viewport[0], MIN_VIEWPORT[0]),
                max(viewport[1], MIN_VIEWPORT[1]))

    def _build(self):
        self.server = ScrapeServer(
            self.loop, self.connection, self.window_server,
            encoder=GoToMyPCEncoder(), pull=True, color_depth=8,
            viewport=self.viewport, resize_mode="none")
        self.client = self._make_client()


class SunRayPlatform(_BaselinePlatform):
    """Sun Ray 3.0: push, low-level commands inferred from pixels."""

    name = "SunRay"
    resize_model = "none"

    def _build(self):
        self.server = ScrapeServer(
            self.loop, self.connection, self.window_server,
            encoder=SunRayEncoder(adaptive=self.wan_mode), pull=False)
        self.client = self._make_client()


class XPlatform(_BaselinePlatform):
    """X11/XFree86 4.3 over ssh -C, aRts remote audio."""

    name = "X"
    resize_model = "none"

    def _build(self):
        self.server = ForwardServer(
            self.loop, self.connection, self.window_server,
            price=price_x_command, sync_every=X_SYNC_EVERY,
            forward_offscreen=True)
        self.client = self._make_client()


class NXPlatform(_BaselinePlatform):
    """NX 1.4: X proxying with compression and round-trip suppression."""

    name = "NX"
    resize_model = "none"

    def _build(self):
        self.server = ForwardServer(
            self.loop, self.connection, self.window_server,
            price=NXPricer(wan_mode=self.wan_mode),
            sync_every=NX_SYNC_EVERY, forward_offscreen=True)
        self.client = self._make_client()


class RDPPlatform(_BaselinePlatform):
    """Microsoft RDP 5.2: graphics orders, compressed audio, clipping."""

    name = "RDP"
    resize_model = "clip"
    audio_compression = RDP_AUDIO_COMPRESSION

    def _build(self):
        self.server = ForwardServer(
            self.loop, self.connection, self.window_server,
            price=OrdersPricer("rdp", wan_mode=self.wan_mode),
            viewport=self.viewport,
            resize_mode="clip" if self.viewport else "none")
        self.client = self._make_client()


class ICAPlatform(_BaselinePlatform):
    """Citrix MetaFrame XP (ICA): orders + client-side resizing."""

    name = "ICA"
    resize_model = "client"
    audio_compression = ICA_AUDIO_COMPRESSION

    def _build(self):
        self.server = ForwardServer(
            self.loop, self.connection, self.window_server,
            price=OrdersPricer("ica", wan_mode=self.wan_mode))
        self.client = self._make_client()


PLATFORMS: Dict[str, type] = {
    "THINC": THINCPlatform,
    "VNC": VNCPlatform,
    "GoToMyPC": GoToMyPCPlatform,
    "SunRay": SunRayPlatform,
    "X": XPlatform,
    "NX": NXPlatform,
    "RDP": RDPPlatform,
    "ICA": ICAPlatform,
}


def make_platform(name: str, loop: EventLoop, link: LinkParams,
                  **kwargs) -> Platform:
    """Instantiate a platform by its paper name."""
    try:
        cls = PLATFORMS[name]
    except KeyError:
        raise ValueError(
            f"unknown platform {name!r}; known: {sorted(PLATFORMS)}"
        ) from None
    return cls(loop, link, **kwargs)
