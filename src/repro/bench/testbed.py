"""The experiment testbed: runs workloads over platforms and networks.

Mirrors the paper's isolated testbed (Figure 1): a thin-client server,
a client, a network emulator between them and a packet monitor watching
the wire.  ``run_web_benchmark`` reproduces the i-Bench methodology —
a mechanically timed click loads each page, with enough idle time
between pages to separate them in the trace — and ``run_av_benchmark``
plays the A/V clip and scores it with slow-motion quality.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..audio.sync import audio_quality, av_sync_skew
from ..net import EventLoop, LinkParams, PacketMonitor
from ..video.stream import BENCHMARK_CLIP, SyntheticVideoClip
from ..workloads.video import AVPlayerApp
from ..workloads.web import WebBrowserApp, make_page_set
from .platforms import make_platform
from .slowmotion import AVRunResult, WebRunResult, measure_page

__all__ = ["run_web_benchmark", "run_av_benchmark", "run_typing_benchmark",
           "WEB_PDA_PLATFORMS", "AV_PLATFORMS", "WEB_PLATFORMS"]

# Platforms measured in each figure (Section 8.3): only these support a
# client display geometry different from the server's.
WEB_PLATFORMS = ["THINC", "X", "NX", "VNC", "SunRay", "RDP", "ICA",
                 "GoToMyPC"]
WEB_PDA_PLATFORMS = ["THINC", "VNC", "RDP", "ICA", "GoToMyPC"]
AV_PLATFORMS = ["THINC", "X", "NX", "VNC", "SunRay", "RDP", "ICA",
                "GoToMyPC"]

# Idle separation between page loads, enough for every system to drain.
PAGE_GAP = 0.75
# Safety bound per page in simulated seconds.
PAGE_DEADLINE = 30.0


def run_web_benchmark(platform_name: str, link: LinkParams,
                      network_label: str = "",
                      page_count: int = 54,
                      width: int = 1024, height: int = 768,
                      viewport: Optional[Tuple[int, int]] = None,
                      wan_mode: bool = False,
                      seed: int = 54, **platform_kwargs) -> WebRunResult:
    """Run the web page-load benchmark for one platform/network pair.

    Extra keyword arguments reach the platform constructor — the
    ablation benches use this to toggle THINC features.
    """
    loop = EventLoop()
    monitor = PacketMonitor()
    platform = make_platform(platform_name, loop, link, monitor=monitor,
                             width=width, height=height, viewport=viewport,
                             wan_mode=wan_mode, **platform_kwargs)
    pages = make_page_set(count=page_count, width=width, height=height,
                          seed=seed)
    browser = WebBrowserApp(platform.window_server, pages)

    # The browser reacts to a click by loading the next page after its
    # server-side processing time.
    state = {"next_page": 0}

    def on_input(x: int, y: int) -> None:
        index = state["next_page"]
        if index >= len(pages):
            return
        state["next_page"] = index + 1
        delay = browser.processing_delay(pages[index])
        loop.schedule(delay, lambda: browser.render_page(index))

    platform.set_input_handler(on_input)

    result = WebRunResult(platform=platform.name, network=network_label)
    for index in range(page_count):
        click_time = loop.now + PAGE_GAP
        monitor.mark(click_time, f"page-{index}")
        link_x, link_y = browser.link_position(max(index - 1, 0))
        processing_before = platform.client_processing_time()
        loop.schedule_at(
            click_time,
            lambda x=link_x, y=link_y: platform.send_client_input(x, y))
        loop.run_until_idle(max_time=click_time + PAGE_DEADLINE)
        processing_delta = (platform.client_processing_time()
                            - processing_before)
        result.pages.append(measure_page(
            monitor, index, click_time, loop.now, processing_delta))
    return result


def run_av_benchmark(platform_name: str, link: LinkParams,
                     network_label: str = "",
                     width: int = 1024, height: int = 768,
                     viewport: Optional[Tuple[int, int]] = None,
                     wan_mode: bool = False,
                     max_frames: Optional[int] = None,
                     clip: Optional[SyntheticVideoClip] = None,
                     **platform_kwargs) -> AVRunResult:
    """Run the A/V playback benchmark for one platform/network pair.

    ``max_frames`` truncates the clip for faster runs; byte totals are
    extrapolated back to the full clip (playback is steady-state), and
    quality is computed over the truncated run directly.
    """
    loop = EventLoop()
    monitor = PacketMonitor()
    platform = make_platform(platform_name, loop, link, monitor=monitor,
                             width=width, height=height, viewport=viewport,
                             wan_mode=wan_mode, **platform_kwargs)
    clip = clip or BENCHMARK_CLIP()
    audio_sink = platform if platform.supports_audio else None
    player = AVPlayerApp(platform.window_server, loop, clip,
                         audio_sink=audio_sink, max_frames=max_frames)
    player.start()
    # Generously bounded: systems at a few percent quality stretch the
    # run by more than an order of magnitude.
    deadline = player.ideal_duration * 40 + 60
    loop.run_until_idle(max_time=deadline)

    first, last = platform.video_frame_times()
    if first is None or last is None:
        actual = player.ideal_duration
    else:
        actual = max(last - player.started_at, player.ideal_duration * 0.01)
    # Playback quality includes the client's own processing (decoding,
    # drawing, any client-side rescaling) — the paper's point about
    # ICA's PDA client being unable to keep up.  Client work overlaps
    # delivery, so it stretches playback only when it is the bottleneck.
    actual = max(actual, platform.client_processing_time())
    frames_received = platform.video_frames_received()
    if platform.supports_audio and player.audio is not None \
            and player.audio.chunks_emitted:
        aq = audio_quality(platform.audio_arrivals(),
                           player.audio.chunks_emitted,
                           player.ideal_duration)
    else:
        aq = 0.0
    skew = None
    video_arrivals = platform.video_arrivals(clip.frame_interval)
    if platform.supports_audio and video_arrivals \
            and platform.audio_arrivals():
        skew = av_sync_skew(platform.audio_arrivals(), video_arrivals)
    scale = clip.frame_count / player.max_frames
    return AVRunResult(
        platform=platform.name,
        network=network_label,
        frames_sent=player.max_frames,
        frames_received=frames_received,
        ideal_duration=player.ideal_duration,
        actual_duration=actual,
        bytes_transferred=monitor.total_bytes("server->client"),
        audio_supported=platform.supports_audio,
        audio_quality=aq,
        full_duration_scale=scale,
        av_sync_skew_s=skew,
    )


def run_typing_benchmark(link: LinkParams, scheduler_factory=None,
                         keys: int = 15, width: int = 640,
                         height: int = 480) -> List[float]:
    """Echo latency under bulk load (the Section 5 ablation).

    Runs THINC with the given delivery scheduler while a user types
    into an editor as large images stream; returns the list of
    keystroke-to-echo latencies observed at the client.
    """
    from ..protocol.commands import BitmapCommand, CompositeCommand
    from ..workloads.interactive import TypingUnderLoadWorkload

    loop = EventLoop()
    kwargs = {}
    if scheduler_factory is not None:
        kwargs["scheduler_factory"] = scheduler_factory
    platform = make_platform("THINC", loop, link, width=width,
                             height=height, headless=False, **kwargs)
    workload = TypingUnderLoadWorkload(
        platform.window_server, loop,
        inject_input=platform.send_client_input, keys=keys)

    # Observe echo delivery: the first glyph (bitmap/composite) command
    # executed at the client after each keystroke completes its record.
    client = platform.client
    original = client._execute

    def probe(cmd, now):
        original(cmd, now)
        if isinstance(cmd, (BitmapCommand, CompositeCommand)):
            for i, record in enumerate(workload.records):
                if record.echo_drawn_time is None \
                        and cmd.dest.overlaps(
                            __import__("repro.region", fromlist=["Rect"])
                            .Rect(workload.cursor[0] - 8,
                                  workload.cursor[1] - 8, 260, 24)):
                    workload.mark_echo_delivered(i, now)
                    break

    client._execute = probe
    workload.start()
    loop.run_until_idle(max_time=keys * 0.15 + 30)
    return workload.latencies()
