"""Plain-text tables for the experiment results.

Every figure in the paper's evaluation is regenerated as a table of the
same series: the bench harness prints these so a run's output can be
diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_mbytes", "format_ms", "format_pct",
           "bar_chart"]


def format_ms(seconds: float) -> str:
    return f"{seconds * 1000:.0f} ms"


def format_mbytes(nbytes: float) -> str:
    if nbytes >= 1e6:
        return f"{nbytes / 1e6:.1f} MB"
    return f"{nbytes / 1e3:.1f} KB"


def format_pct(fraction: float) -> str:
    return f"{fraction * 100:.1f}%"


def format_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 note: Optional[str] = None) -> str:
    """Render an aligned plain-text table with a title rule."""
    rendered: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    rule = "=" * max(len(title), sum(widths) + 2 * (len(widths) - 1))
    out = [rule, title, rule, line(headers),
           line(["-" * w for w in widths])]
    out.extend(line(row) for row in rendered)
    if note:
        out.append("")
        out.append(f"note: {note}")
    return "\n".join(out)


def bar_chart(title: str, entries, unit: str = "",
              width: int = 46) -> str:
    """Render (label, value) pairs as a horizontal ASCII bar chart.

    The terminal equivalent of the paper's bar figures; bars scale to
    the maximum value.
    """
    entries = list(entries)
    if not entries:
        return f"{title}\n(no data)"
    label_w = max(len(str(label)) for label, _ in entries)
    peak = max(value for _, value in entries) or 1.0
    lines = [title, "-" * max(len(title), label_w + width + 12)]
    for label, value in entries:
        bar = "#" * max(1, int(round(width * value / peak)))
        lines.append(f"{str(label).ljust(label_w)}  {bar.ljust(width)} "
                     f"{value:g}{unit}")
    return "\n".join(lines)
