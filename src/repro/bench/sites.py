"""Remote sites for the WAN experiments (paper Table 2).

The paper ran THINC clients on PlanetLab nodes and volunteer machines
around the world, with the server in New York.  We reproduce each site
as a link whose RTT derives from its great-circle distance (fibre
propagation at ~2/3 c, doubled for the round trip, times a routing
inflation factor, plus a fixed access overhead) and whose TCP window
matches the paper's constraint: PlanetLab nodes were capped at 256 KB;
elsewhere 1 MB windows were configured.  Korea's site is additionally
window-capped — the paper attributes its poor A/V quality not to the
link but to a TCP window it was not allowed to raise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..net.link import LinkParams

__all__ = ["RemoteSite", "REMOTE_SITES", "site_link"]

# Effective one-way propagation per km, including routing inflation
# (light in fibre is ~5 us/km; internet paths run ~1.6-2x longer).
_SECONDS_PER_KM_RTT = 1.7e-5
_ACCESS_OVERHEAD_RTT = 0.004
_MILES_TO_KM = 1.609344

PLANETLAB_WINDOW = 256 * 1024
DEFAULT_WINDOW = 1 << 20


@dataclass(frozen=True)
class RemoteSite:
    """One row of Table 2."""

    code: str
    location: str
    planetlab: bool
    distance_miles: int

    @property
    def rtt(self) -> float:
        km = self.distance_miles * _MILES_TO_KM
        return _ACCESS_OVERHEAD_RTT + km * _SECONDS_PER_KM_RTT

    @property
    def tcp_window(self) -> int:
        return PLANETLAB_WINDOW if self.planetlab else DEFAULT_WINDOW


# Table 2 of the paper, verbatim.
REMOTE_SITES: List[RemoteSite] = [
    RemoteSite("NY", "New York, NY, USA", True, 5),
    RemoteSite("PA", "Philadelphia, PA, USA", True, 78),
    RemoteSite("MA", "Cambridge, MA, USA", True, 188),
    RemoteSite("MN", "St. Paul, MN, USA", True, 1015),
    RemoteSite("NM", "Albuquerque, NM, USA", False, 1816),
    RemoteSite("CA", "Stanford, CA, USA", False, 2571),
    RemoteSite("CAN", "Waterloo, Canada", True, 388),
    RemoteSite("IE", "Maynooth, Ireland", False, 3185),
    RemoteSite("PR", "San Juan, Puerto Rico", False, 1603),
    RemoteSite("FI", "Helsinki, Finland", False, 4123),
    RemoteSite("KR", "Seoul, Korea", True, 6885),
]


def site_link(site: RemoteSite, bandwidth_bps: float = 100e6) -> LinkParams:
    """The network path from the testbed server to *site*'s client."""
    return LinkParams(
        name=f"site-{site.code}",
        bandwidth_bps=bandwidth_bps,
        rtt=site.rtt,
        tcp_window=site.tcp_window,
    )
