"""Porter–Duff image compositing operators.

THINC's protocol carries a full alpha channel so that the client can
support graphics compositing (anti-aliased text, translucent windows)
when its hardware can, and the server can fall back to software
compositing when it cannot.  These are the software implementations,
operating on straight-alpha RGBA uint8 arrays.

Reference: Porter & Duff, "Compositing Digital Images", SIGGRAPH 1984.
"""

from __future__ import annotations

import numpy as np

__all__ = ["over", "in_", "out", "atop", "xor", "plus", "apply_operator",
           "OPERATORS"]


def _split(img: np.ndarray):
    """Split an RGBA uint8 image into float colour and alpha planes."""
    arr = np.asarray(img, dtype=np.float64) / 255.0
    return arr[..., :3], arr[..., 3:4]


def _join(rgb: np.ndarray, alpha: np.ndarray) -> np.ndarray:
    out_img = np.concatenate([rgb, alpha], axis=-1)
    return np.clip(np.rint(out_img * 255.0), 0, 255).astype(np.uint8)


def _compose(src: np.ndarray, dst: np.ndarray, fa: float, fb: float,
             fa_arr=None, fb_arr=None) -> np.ndarray:
    """Generic Porter–Duff composition with per-pixel fractions.

    Works in premultiplied space internally: each operator is
    ``co = cs*Fa + cd*Fb`` on premultiplied colour with matching alpha.
    """
    s_rgb, s_a = _split(src)
    d_rgb, d_a = _split(dst)
    s_pre = s_rgb * s_a
    d_pre = d_rgb * d_a
    fa_v = fa_arr if fa_arr is not None else fa
    fb_v = fb_arr if fb_arr is not None else fb
    out_pre = s_pre * fa_v + d_pre * fb_v
    out_a = s_a * fa_v + d_a * fb_v
    out_a = np.clip(out_a, 0.0, 1.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        out_rgb = np.where(out_a > 0, out_pre / np.maximum(out_a, 1e-12), 0.0)
    return _join(np.clip(out_rgb, 0.0, 1.0), out_a)


def over(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """src OVER dst — the workhorse blend for window composition."""
    _, s_a = _split(src)
    return _compose(src, dst, 1.0, 0.0, fa_arr=1.0, fb_arr=1.0 - s_a)


def in_(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """src IN dst — source visible only where destination is opaque."""
    _, d_a = _split(dst)
    return _compose(src, dst, 0.0, 0.0, fa_arr=d_a, fb_arr=0.0)


def out(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """src OUT dst — source visible only where destination is clear."""
    _, d_a = _split(dst)
    return _compose(src, dst, 0.0, 0.0, fa_arr=1.0 - d_a, fb_arr=0.0)


def atop(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """src ATOP dst — source clipped to destination, destination elsewhere."""
    _, s_a = _split(src)
    _, d_a = _split(dst)
    return _compose(src, dst, 0.0, 0.0, fa_arr=d_a, fb_arr=1.0 - s_a)


def xor(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """src XOR dst — each visible only where the other is clear."""
    _, s_a = _split(src)
    _, d_a = _split(dst)
    return _compose(src, dst, 0.0, 0.0, fa_arr=1.0 - d_a, fb_arr=1.0 - s_a)


def plus(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """src PLUS dst — saturating additive blend."""
    return _compose(src, dst, 1.0, 1.0)


OPERATORS = {
    "over": over,
    "in": in_,
    "out": out,
    "atop": atop,
    "xor": xor,
    "plus": plus,
}


def apply_operator(name: str, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Apply a named Porter–Duff operator; raises KeyError on unknown."""
    try:
        op = OPERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown compositing operator {name!r}; "
            f"known: {sorted(OPERATORS)}"
        ) from None
    return op(src, dst)
