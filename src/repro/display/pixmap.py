"""Drawables: the onscreen framebuffer and offscreen pixmaps.

In X, rendering targets are *drawables* — either the screen itself or an
offscreen pixmap living in (video) memory.  Modern toolkits prepare
window content in pixmaps and copy the finished result onscreen; THINC's
offscreen-awareness optimisation (Section 4.1) exists precisely because
that copy is where naive thin clients lose all drawing semantics.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..region import Rect
from .framebuffer import Framebuffer

__all__ = ["Drawable"]

_ids = itertools.count(1)


class Drawable:
    """A render target: ``onscreen`` is True only for the screen itself."""

    def __init__(self, width: int, height: int, onscreen: bool,
                 label: Optional[str] = None):
        self.id = next(_ids)
        self.onscreen = onscreen
        self.fb = Framebuffer(width, height)
        self.label = label or ("screen" if onscreen else f"pixmap-{self.id}")
        self.alive = True

    @property
    def width(self) -> int:
        return self.fb.width

    @property
    def height(self) -> int:
        return self.fb.height

    @property
    def bounds(self) -> Rect:
        return self.fb.bounds

    def destroy(self) -> None:
        self.alive = False

    def __repr__(self) -> str:
        kind = "screen" if self.onscreen else "pixmap"
        return f"Drawable<{kind} #{self.id} {self.width}x{self.height}>"
