"""Line rasterisation into driver-level spans.

X servers do not hand lines to 2D hardware as "lines": XAA decomposes
them into horizontal/vertical solid spans (thin fills) and per-pixel
runs for diagonals, which reach the driver as tiny solid fills.  That
is exactly the shape THINC's translation layer expects — runs of small
adjacent SFILLs that the command queue merges.

This module implements the decomposition: Bresenham's algorithm grouped
into maximal horizontal or vertical spans.
"""

from __future__ import annotations

from typing import List, Tuple

from ..region import Rect

__all__ = ["line_spans", "rect_outline_spans", "polyline_spans"]


def line_spans(x0: int, y0: int, x1: int, y1: int,
               width: int = 1) -> List[Rect]:
    """Decompose a line into maximal axis-aligned spans.

    Returns disjoint rects of the given stroke *width* that together
    cover Bresenham's pixels for the segment.  Horizontal and vertical
    lines become a single span; diagonals become one span per step run.
    """
    if width < 1:
        raise ValueError("stroke width must be at least 1")
    if y0 == y1:  # horizontal
        x_lo, x_hi = sorted((x0, x1))
        return [Rect(x_lo, y0, x_hi - x_lo + 1, width)]
    if x0 == x1:  # vertical
        y_lo, y_hi = sorted((y0, y1))
        return [Rect(x0, y_lo, width, y_hi - y_lo + 1)]

    # Canonicalise the direction so a segment and its reverse rasterise
    # to the same pixels.
    if (x0, y0) > (x1, y1):
        x0, y0, x1, y1 = x1, y1, x0, y0

    # General case: standard Bresenham, then group pixels of each row
    # into maximal horizontal runs.
    dx = abs(x1 - x0)
    dy = abs(y1 - y0)
    sx = 1 if x1 > x0 else -1
    sy = 1 if y1 > y0 else -1
    err = dx - dy
    x, y = x0, y0
    spans: List[Rect] = []
    run_start_x = x
    prev_x = x
    while True:
        if x == x1 and y == y1:
            spans.append(_run_rect(run_start_x, x, y, width))
            break
        e2 = 2 * err
        if e2 > -dy:
            err -= dy
            prev_x = x
            x += sx
        else:
            prev_x = x
        if e2 < dx:
            err += dx
            # The current row's run ends at the pixel we plotted there.
            spans.append(_run_rect(run_start_x, prev_x, y, width))
            y += sy
            run_start_x = x
    return spans


def _run_rect(x_start: int, x_end: int, y: int, width: int) -> Rect:
    lo, hi = sorted((x_start, x_end))
    return Rect(lo, y, hi - lo + 1, width)


def rect_outline_spans(rect: Rect, width: int = 1) -> List[Rect]:
    """The four edge spans of a rectangle outline (window borders)."""
    if width < 1:
        raise ValueError("stroke width must be at least 1")
    if rect.empty:
        return []
    w = min(width, rect.height // 2 or 1, rect.width // 2 or 1)
    top = Rect(rect.x, rect.y, rect.width, w)
    bottom = Rect(rect.x, rect.y2 - w, rect.width, w)
    left = Rect(rect.x, rect.y + w, w, max(rect.height - 2 * w, 0))
    right = Rect(rect.x2 - w, rect.y + w, w, max(rect.height - 2 * w, 0))
    return [r for r in (top, bottom, left, right) if r]


def polyline_spans(points: List[Tuple[int, int]],
                   width: int = 1) -> List[Rect]:
    """Spans covering a connected sequence of line segments."""
    if len(points) < 2:
        raise ValueError("a polyline needs at least two points")
    spans: List[Rect] = []
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        segment = line_spans(x0, y0, x1, y1, width)
        if spans and segment:
            # Avoid double-drawing the shared vertex pixel where easy.
            first = segment[0]
            if spans[-1] == first:
                segment = segment[1:]
        spans.extend(segment)
    return spans
