"""A simulated X-style window server.

Applications issue high-level display commands to the window server.
The server performs the software rendering into the target drawable's
framebuffer (the ground truth used by the correctness tests) and then
invokes the video :class:`~repro.display.driver.DisplayDriver` hooks
with the full semantic information a real driver receives.

Two behaviours of real servers matter for the paper's results and are
modelled explicitly:

* **Glyph text** renders as one driver-level stipple per glyph, so a
  line of text produces many tiny ``bitmap_fill`` calls — the small
  updates THINC aggregates (Section 4).
* **Image rasterisation** proceeds in scan-line chunks, so one large
  ``put_image`` becomes many thin ``put_image`` driver calls that an
  efficient translator must merge.

Application-*level* commands (pre-decomposition) are also published to
registered listeners; the X/NX/RDP/ICA baselines intercept there, which
is exactly where those systems sit architecturally.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Tuple

import numpy as np

from ..region import Rect, Region
from ..video import yuv
from .driver import DisplayDriver, InputEvent, VideoStreamInfo
from .font import (ADVANCE, GLYPH_HEIGHT, GLYPH_WIDTH, glyph_bitmap,
                   glyph_coverage)
from .lines import line_spans, polyline_spans, rect_outline_spans
from .pixmap import Drawable

__all__ = ["WindowServer", "AppCommand", "AppCommandListener"]

Color = Tuple[int, int, int, int]


@dataclass(frozen=True)
class AppCommand:
    """One application-level display command, as seen above the driver."""

    name: str
    drawable_id: int
    onscreen: bool
    rect: Rect
    payload: object = None
    # The live drawable, for systems that need to read back the pixels
    # just rendered (command-forwarding baselines price image content).
    drawable: object = None


class AppCommandListener(Protocol):
    """Interface for systems intercepting application display commands."""

    def on_app_command(self, command: AppCommand) -> None: ...


class _WallClock:
    """Fallback clock when the server runs outside a simulation."""

    now = 0.0


class WindowServer:
    """The display system: screen, pixmaps, rendering, driver dispatch."""

    def __init__(self, width: int, height: int,
                 driver: Optional[DisplayDriver] = None,
                 clock=None, image_chunk_rows: int = 8):
        self.screen = Drawable(width, height, onscreen=True)
        self.driver: DisplayDriver = driver or DisplayDriver()
        self.clock = clock if clock is not None else _WallClock()
        self.image_chunk_rows = max(1, image_chunk_rows)
        self.listeners: List[AppCommandListener] = []
        self.pixmaps: Dict[int, Drawable] = {}
        self.video_streams: Dict[int, VideoStreamInfo] = {}
        self._stream_ids = itertools.count(1)
        # Optional GC clip region: when set, drawing only touches the
        # pixels inside it (X applications clip to exposed areas).
        self._clip: Optional[Region] = None
        self.cursor_image: Optional[np.ndarray] = None
        self.cursor_hotspot: Tuple[int, int] = (0, 0)
        # Operation counters for diagnostics and overhead accounting.
        self.op_counts: Dict[str, int] = {}

    # -- plumbing ---------------------------------------------------------

    def add_listener(self, listener: AppCommandListener) -> None:
        self.listeners.append(listener)

    def _notify(self, name: str, drawable: Drawable, rect: Rect,
                payload: object = None) -> None:
        self.op_counts[name] = self.op_counts.get(name, 0) + 1
        if self.listeners:
            cmd = AppCommand(name, drawable.id, drawable.onscreen,
                             rect, payload, drawable)
            for listener in self.listeners:
                listener.on_app_command(cmd)

    def _check(self, drawable: Drawable) -> None:
        if not drawable.alive:
            raise ValueError(f"{drawable!r} has been destroyed")

    # -- GC clip region ------------------------------------------------------

    def set_clip(self, region) -> None:
        """Install a clip region for subsequent drawing (None clears).

        Accepts a Rect, a Region, or None.  Mirrors X's GC clip masks:
        expose handlers redraw a window through the exposed region.
        """
        if region is None:
            self._clip = None
        elif isinstance(region, Rect):
            self._clip = Region.from_rect(region)
        elif isinstance(region, Region):
            self._clip = region.copy()
        else:
            raise TypeError("clip must be a Rect, Region or None")

    def clip(self, region):
        """Context manager: drawing inside is clipped to *region*."""
        server = self

        class _Clip:
            def __enter__(self):
                self._saved = server._clip
                server.set_clip(region)
                return server

            def __exit__(self, *exc):
                server._clip = self._saved
                return False

        return _Clip()

    def _clip_pieces(self, rect: Rect):
        """The sub-rects of *rect* that survive the current clip."""
        if self._clip is None:
            return [rect] if rect else []
        return [r for r in self._clip.intersect_rect(rect)]

    # -- drawable management -----------------------------------------------

    def create_pixmap(self, width: int, height: int,
                      label: Optional[str] = None) -> Drawable:
        pixmap = Drawable(width, height, onscreen=False, label=label)
        self.pixmaps[pixmap.id] = pixmap
        return pixmap

    def free_pixmap(self, pixmap: Drawable) -> None:
        self._check(pixmap)
        if pixmap.onscreen:
            raise ValueError("cannot free the screen")
        pixmap.destroy()
        del self.pixmaps[pixmap.id]
        self.driver.destroy_drawable(pixmap)

    # -- application display commands ---------------------------------------

    def fill_rect(self, drawable: Drawable, rect: Rect, color: Color) -> Rect:
        """Solid fill: window backgrounds, page backgrounds, rules."""
        self._check(drawable)
        total = Rect(0, 0, 0, 0)
        for piece in self._clip_pieces(rect):
            drawn = drawable.fb.fill_rect(piece, color)
            if drawn:
                self.driver.solid_fill(drawable, drawn, color)
                total = total.union_bounds(drawn)
        self._notify("fill_rect", drawable, total, color)
        return total

    def fill_tiled(self, drawable: Drawable, rect: Rect, tile: np.ndarray,
                   origin: Tuple[int, int] = (0, 0)) -> Rect:
        """Tiled fill: desktop patterns, repeating web backgrounds."""
        self._check(drawable)
        total = Rect(0, 0, 0, 0)
        for piece in self._clip_pieces(rect):
            drawn = drawable.fb.tile_rect(piece, tile, origin)
            if drawn:
                self.driver.pattern_fill(drawable, drawn, tile, origin)
                total = total.union_bounds(drawn)
        self._notify("fill_tiled", drawable, total, tile)
        return total

    def fill_stipple(self, drawable: Drawable, rect: Rect, mask: np.ndarray,
                     fg: Color, bg: Optional[Color] = None) -> Rect:
        """Raw stipple fill, the primitive under glyph rendering."""
        self._check(drawable)
        drawn = drawable.fb.stipple_rect(rect, mask, fg, bg)
        if drawn:
            local = _crop_mask(mask, rect, drawn)
            self.driver.bitmap_fill(drawable, drawn, local, fg, bg)
        self._notify("fill_stipple", drawable, drawn, (fg, bg))
        return drawn

    def draw_text(self, drawable: Drawable, x: int, y: int, text: str,
                  fg: Color) -> Rect:
        """Draw one line of text; decomposes to per-glyph stipples.

        Returns the bounding rect of the drawn text (pre-clipping).
        """
        self._check(drawable)
        bounds = Rect(x, y, max(len(text) * ADVANCE - 1, 1), GLYPH_HEIGHT)
        for i, ch in enumerate(text):
            glyph_rect = Rect(x + i * ADVANCE, y, GLYPH_WIDTH, GLYPH_HEIGHT)
            mask = glyph_bitmap(ch)
            for piece in self._clip_pieces(glyph_rect):
                piece_mask = _crop_mask(mask, glyph_rect, piece)
                drawn = drawable.fb.stipple_rect(piece, piece_mask, fg,
                                                 None)
                if drawn:
                    local = _crop_mask(piece_mask, piece, drawn)
                    self.driver.bitmap_fill(drawable, drawn, local, fg,
                                            None)
        self._notify("draw_text", drawable, bounds, text)
        return bounds

    def draw_text_aa(self, drawable: Drawable, x: int, y: int, text: str,
                     fg: Color) -> Rect:
        """Draw anti-aliased text: per-glyph alpha blends (RENDER-style).

        Each glyph becomes an RGBA block whose alpha carries the
        supersampled coverage, composited with Porter-Duff 'over' —
        the operation THINC's alpha-capable protocol forwards as a
        transparent COMPOSITE command.
        """
        self._check(drawable)
        bounds = Rect(x, y, max(len(text) * ADVANCE - 1, 1), GLYPH_HEIGHT)
        r, g, b = fg[0], fg[1], fg[2]
        for i, ch in enumerate(text):
            coverage = glyph_coverage(ch)
            if not coverage.any():
                continue
            glyph_rect = Rect(x + i * ADVANCE, y, GLYPH_WIDTH, GLYPH_HEIGHT)
            rgba = np.empty(coverage.shape + (4,), dtype=np.uint8)
            rgba[..., 0] = r
            rgba[..., 1] = g
            rgba[..., 2] = b
            rgba[..., 3] = np.rint(coverage * fg[3]).astype(np.uint8)
            for piece in self._clip_pieces(glyph_rect):
                sub = rgba[piece.y - glyph_rect.y : piece.y2 - glyph_rect.y,
                           piece.x - glyph_rect.x : piece.x2 - glyph_rect.x]
                drawn = drawable.fb.composite(piece, sub)
                if drawn:
                    blended = sub[
                        drawn.y - piece.y : drawn.y2 - piece.y,
                        drawn.x - piece.x : drawn.x2 - piece.x]
                    self.driver.composite(drawable, drawn, blended, "over")
        self._notify("draw_text_aa", drawable, bounds, text)
        return bounds

    def put_image(self, drawable: Drawable, rect: Rect,
                  pixels: np.ndarray) -> Rect:
        """Store client-supplied pixels; rasterised in scan-line chunks."""
        self._check(drawable)
        pixels = np.asarray(pixels, dtype=np.uint8)
        if pixels.shape[:2] != (rect.height, rect.width):
            raise ValueError(
                f"image {pixels.shape} does not match {rect!r}"
            )
        if pixels.shape[2] == 3:  # accept RGB, promote to opaque RGBA
            alpha = np.full(pixels.shape[:2] + (1,), 255, dtype=np.uint8)
            pixels = np.concatenate([pixels, alpha], axis=2)
        total = Rect(0, 0, 0, 0)
        for y0 in range(0, rect.height, self.image_chunk_rows):
            rows = min(self.image_chunk_rows, rect.height - y0)
            chunk_rect = Rect(rect.x, rect.y + y0, rect.width, rows)
            chunk = pixels[y0 : y0 + rows]
            for piece in self._clip_pieces(chunk_rect):
                sub_in = chunk[
                    piece.y - chunk_rect.y : piece.y2 - chunk_rect.y,
                    piece.x - chunk_rect.x : piece.x2 - chunk_rect.x,
                ]
                drawn = drawable.fb.put_pixels(piece, sub_in)
                if drawn:
                    sub = sub_in[
                        drawn.y - piece.y : drawn.y2 - piece.y,
                        drawn.x - piece.x : drawn.x2 - piece.x,
                    ]
                    self.driver.put_image(drawable, drawn, sub)
                    total = total.union_bounds(drawn)
        self._notify("put_image", drawable, total, rect.area)
        return total

    def composite(self, drawable: Drawable, rect: Rect, pixels: np.ndarray,
                  operator: str = "over") -> Rect:
        """Porter–Duff blend (anti-aliased text, translucency)."""
        self._check(drawable)
        drawn = drawable.fb.composite(rect, pixels)
        if drawn:
            sub = np.asarray(pixels, dtype=np.uint8)[
                drawn.y - rect.y : drawn.y2 - rect.y,
                drawn.x - rect.x : drawn.x2 - rect.x,
            ]
            self.driver.composite(drawable, drawn, sub, operator)
        self._notify("composite", drawable, drawn, operator)
        return drawn

    def copy_area(self, src: Drawable, dst: Drawable, src_rect: Rect,
                  dst_x: int, dst_y: int) -> Rect:
        """Blit between drawables: scrolling, window moves, offscreen flips."""
        self._check(src)
        self._check(dst)
        src_clipped = src_rect.intersect(src.bounds)
        if not src_clipped:
            return src_clipped
        dx = dst_x + (src_clipped.x - src_rect.x)
        dy = dst_y + (src_clipped.y - src_rect.y)
        if src is dst:
            drawn = dst.fb.copy_area(src_clipped, dx, dy)
        else:
            block = src.fb.read_pixels(src_clipped)
            dst_rect = Rect(dx, dy, src_clipped.width, src_clipped.height)
            drawn = dst.fb.put_pixels(dst_rect, block)
        if drawn:
            # Pass the source rect aligned to the destination that survived.
            src_final = Rect(
                src_clipped.x + (drawn.x - dx),
                src_clipped.y + (drawn.y - dy),
                drawn.width,
                drawn.height,
            )
            self.driver.copy_area(src, dst, src_final, drawn.x, drawn.y)
        self._notify("copy_area", dst, drawn, (src.id, src_rect))
        return drawn

    def draw_line(self, drawable: Drawable, x0: int, y0: int,
                  x1: int, y1: int, color: Color, width: int = 1) -> Rect:
        """Draw a line; decomposes into solid spans like XAA does.

        Returns the bounding rect of the drawn (pre-clip) segment.
        """
        self._check(drawable)
        for span in line_spans(x0, y0, x1, y1, width):
            for piece in self._clip_pieces(span):
                drawn = drawable.fb.fill_rect(piece, color)
                if drawn:
                    self.driver.solid_fill(drawable, drawn, color)
        bounds = Rect.from_corners(min(x0, x1), min(y0, y1),
                                   max(x0, x1) + 1, max(y0, y1) + width)
        self._notify("draw_line", drawable, bounds, color)
        return bounds

    def draw_polyline(self, drawable: Drawable, points, color: Color,
                      width: int = 1) -> Rect:
        """Draw connected segments (graph curves, freehand strokes)."""
        self._check(drawable)
        bounds = Rect(0, 0, 0, 0)
        for span in polyline_spans(list(points), width):
            for piece in self._clip_pieces(span):
                drawn = drawable.fb.fill_rect(piece, color)
                if drawn:
                    self.driver.solid_fill(drawable, drawn, color)
            bounds = bounds.union_bounds(span)
        self._notify("draw_polyline", drawable, bounds, color)
        return bounds

    def draw_rect_outline(self, drawable: Drawable, rect: Rect,
                          color: Color, width: int = 1) -> Rect:
        """Draw a rectangle outline (window borders, focus rings)."""
        self._check(drawable)
        for span in rect_outline_spans(rect, width):
            for piece in self._clip_pieces(span):
                drawn = drawable.fb.fill_rect(piece, color)
                if drawn:
                    self.driver.solid_fill(drawable, drawn, color)
        self._notify("draw_rect_outline", drawable, rect, color)
        return rect

    # -- XVideo extension ---------------------------------------------------

    def video_create_stream(self, pixel_format: str, src_width: int,
                            src_height: int, dst_rect: Rect
                            ) -> VideoStreamInfo:
        if pixel_format not in yuv.FORMATS:
            raise ValueError(f"unsupported pixel format {pixel_format!r}")
        stream = VideoStreamInfo(
            stream_id=next(self._stream_ids),
            pixel_format=pixel_format,
            src_width=src_width,
            src_height=src_height,
            dst_rect=dst_rect,
        )
        self.video_streams[stream.stream_id] = stream
        self.driver.video_setup(stream)
        self._notify("video_setup", self.screen, dst_rect, stream.stream_id)
        return stream

    def video_put_frame(self, stream: VideoStreamInfo,
                        yuv_bytes: bytes) -> Rect:
        """Present one YUV frame; the screen shows the scaled RGB result."""
        if stream.stream_id not in self.video_streams:
            raise ValueError("video stream is not active")
        rgb = yuv.decode_frame(stream.pixel_format, yuv_bytes,
                               stream.src_width, stream.src_height)
        dst = stream.dst_rect
        scaled = yuv.scale_rgb(rgb, dst.width, dst.height)
        alpha = np.full(scaled.shape[:2] + (1,), 255, dtype=np.uint8)
        drawn = self.screen.fb.put_pixels(
            dst, np.concatenate([scaled, alpha], axis=2))
        stream.frames_put += 1
        self.driver.video_put(stream, yuv_bytes, dst)
        self._notify("video_put", self.screen, drawn, stream.stream_id)
        return drawn

    def video_move_stream(self, stream: VideoStreamInfo,
                          dst_rect: Rect) -> None:
        if stream.stream_id not in self.video_streams:
            raise ValueError("video stream is not active")
        stream.dst_rect = dst_rect
        self.driver.video_move(stream, dst_rect)
        self._notify("video_move", self.screen, dst_rect, stream.stream_id)

    def video_destroy_stream(self, stream: VideoStreamInfo) -> None:
        if self.video_streams.pop(stream.stream_id, None) is None:
            raise ValueError("video stream is not active")
        self.driver.video_teardown(stream)
        self._notify("video_teardown", self.screen, stream.dst_rect,
                     stream.stream_id)

    # -- cursor -----------------------------------------------------------------

    def set_cursor(self, pixels: np.ndarray,
                   hotspot: Tuple[int, int] = (0, 0)) -> None:
        """Change the pointer shape (applications set per-window cursors).

        The cursor is a hardware overlay: it never touches the
        framebuffer, so the driver only learns the new shape.
        """
        pixels = np.ascontiguousarray(pixels, dtype=np.uint8)
        if pixels.ndim != 3 or pixels.shape[2] != 4:
            raise ValueError("cursor image must be HxWx4 RGBA")
        if pixels.shape[0] > 64 or pixels.shape[1] > 64:
            raise ValueError("cursor images are limited to 64x64")
        hx, hy = hotspot
        if not (0 <= hx < pixels.shape[1] and 0 <= hy < pixels.shape[0]):
            raise ValueError("hotspot must lie inside the cursor image")
        self.cursor_image = pixels
        self.cursor_hotspot = (int(hx), int(hy))
        self.driver.cursor_set(pixels, self.cursor_hotspot)
        self.op_counts["cursor"] = self.op_counts.get("cursor", 0) + 1

    # -- input ----------------------------------------------------------------

    def inject_input(self, event: InputEvent) -> None:
        """User input arriving from the client; forwarded to the driver."""
        self.driver.input_event(event)
        self.op_counts["input"] = self.op_counts.get("input", 0) + 1


def _crop_mask(mask: np.ndarray, intended: Rect, drawn: Rect) -> np.ndarray:
    """Crop a stipple mask to the part of *intended* that survived clipping.

    Mirrors the wrap-around indexing used by Framebuffer.stipple_rect so
    the driver sees exactly the bits that were applied.
    """
    mask = np.asarray(mask, dtype=bool)
    ys = (np.arange(drawn.y, drawn.y2) - intended.y) % mask.shape[0]
    xs = (np.arange(drawn.x, drawn.x2) - intended.x) % mask.shape[1]
    return mask[np.ix_(ys, xs)]
