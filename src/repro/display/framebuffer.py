"""A software framebuffer with the raster operations of 2D display hardware.

Both the simulated window server and every thin-client's client device
render into one of these.  Pixels are 32-bit RGBA (24-bit colour plus an
alpha channel, matching THINC's wire formats); the raster operations map
one-to-one onto the driver-level primitives the THINC protocol mirrors:

=============  =====================================================
operation       protocol analogue
=============  =====================================================
put_pixels      RAW — unencoded pixel data
copy_area       COPY — intra-framebuffer blit (overlap safe)
fill_rect       SFILL — solid colour fill
tile_rect       PFILL — replicate a tile over a region
stipple_rect    BITMAP — 1-bit stipple expanded with fg/bg colours
composite       alpha blending (Porter–Duff "over")
=============  =====================================================

All operations clip to the framebuffer bounds, so callers may pass
rectangles that hang off an edge.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..region import Rect

__all__ = ["Framebuffer", "solid_pixels", "make_tile", "CHANNELS"]

CHANNELS = 4  # RGBA

Color = Tuple[int, int, int, int]


def solid_pixels(width: int, height: int, color: Color) -> np.ndarray:
    """An RGBA pixel block of the given size filled with one colour."""
    block = np.empty((height, width, CHANNELS), dtype=np.uint8)
    block[:, :] = np.asarray(color, dtype=np.uint8)
    return block


def make_tile(pattern: np.ndarray) -> np.ndarray:
    """Validate and normalise a tile image to RGBA uint8."""
    tile = np.asarray(pattern, dtype=np.uint8)
    if tile.ndim != 3 or tile.shape[2] != CHANNELS:
        raise ValueError(f"tile must be HxWx{CHANNELS} RGBA, got {tile.shape}")
    if tile.shape[0] == 0 or tile.shape[1] == 0:
        raise ValueError("tile must be non-empty")
    return tile


class Framebuffer:
    """An RGBA pixel raster supporting hardware-style 2D operations."""

    def __init__(self, width: int, height: int, fill: Color = (0, 0, 0, 255)):
        if width <= 0 or height <= 0:
            raise ValueError("framebuffer dimensions must be positive")
        self.width = width
        self.height = height
        self.data = solid_pixels(width, height, fill)
        # Counts every pixel written; used to measure drawing work.
        self.pixels_drawn = 0

    # -- geometry helpers ---------------------------------------------------

    @property
    def bounds(self) -> Rect:
        return Rect(0, 0, self.width, self.height)

    def _clip(self, rect: Rect) -> Rect:
        return rect.intersect(self.bounds)

    def _view(self, rect: Rect) -> np.ndarray:
        return self.data[rect.y : rect.y2, rect.x : rect.x2]

    # -- raster operations -----------------------------------------------

    def fill_rect(self, rect: Rect, color: Color) -> Rect:
        """Solid fill (SFILL analogue).  Returns the clipped rect drawn."""
        clipped = self._clip(rect)
        if clipped:
            self._view(clipped)[:, :] = np.asarray(color, dtype=np.uint8)
            self.pixels_drawn += clipped.area
        return clipped

    def tile_rect(self, rect: Rect, tile: np.ndarray,
                  origin: Tuple[int, int] = (0, 0)) -> Rect:
        """Tile fill (PFILL analogue).

        The tile is anchored so that tile pixel (0, 0) lands at *origin*
        in framebuffer space, matching X's tile-origin semantics.
        """
        tile = make_tile(tile)
        clipped = self._clip(rect)
        if not clipped:
            return clipped
        th, tw = tile.shape[0], tile.shape[1]
        ys = (np.arange(clipped.y, clipped.y2) - origin[1]) % th
        xs = (np.arange(clipped.x, clipped.x2) - origin[0]) % tw
        self._view(clipped)[:, :] = tile[np.ix_(ys, xs)]
        self.pixels_drawn += clipped.area
        return clipped

    def stipple_rect(self, rect: Rect, bitmap: np.ndarray,
                     fg: Color, bg: Optional[Color] = None) -> Rect:
        """Bitmap fill (BITMAP analogue).

        *bitmap* is a boolean HxW mask sized to *rect* (it is cropped or
        tiled as needed).  Ones take the foreground colour; zeros take the
        background colour, or are left untouched when *bg* is ``None``
        (a transparent stipple, as used for glyph text).
        """
        mask = np.asarray(bitmap, dtype=bool)
        if mask.ndim != 2:
            raise ValueError("bitmap must be a 2-D boolean mask")
        clipped = self._clip(rect)
        if not clipped:
            return clipped
        # Index the mask in rect-local coordinates, wrapping so small
        # stipples tile across larger rects.
        ys = (np.arange(clipped.y, clipped.y2) - rect.y) % mask.shape[0]
        xs = (np.arange(clipped.x, clipped.x2) - rect.x) % mask.shape[1]
        local = mask[np.ix_(ys, xs)]
        view = self._view(clipped)
        view[local] = np.asarray(fg, dtype=np.uint8)
        if bg is not None:
            view[~local] = np.asarray(bg, dtype=np.uint8)
        self.pixels_drawn += clipped.area
        return clipped

    def put_pixels(self, rect: Rect, pixels: np.ndarray) -> Rect:
        """Raw pixel store (RAW analogue).  *pixels* must be rect-sized."""
        pixels = np.asarray(pixels, dtype=np.uint8)
        if pixels.shape != (rect.height, rect.width, CHANNELS):
            raise ValueError(
                f"pixel block {pixels.shape} does not match {rect!r}"
            )
        clipped = self._clip(rect)
        if not clipped:
            return clipped
        sub = pixels[
            clipped.y - rect.y : clipped.y2 - rect.y,
            clipped.x - rect.x : clipped.x2 - rect.x,
        ]
        self._view(clipped)[:, :] = sub
        self.pixels_drawn += clipped.area
        return clipped

    def composite(self, rect: Rect, pixels: np.ndarray) -> Rect:
        """Porter–Duff "over" blend of an RGBA block onto the framebuffer."""
        from .compositing import over

        pixels = np.asarray(pixels, dtype=np.uint8)
        if pixels.shape != (rect.height, rect.width, CHANNELS):
            raise ValueError(
                f"pixel block {pixels.shape} does not match {rect!r}"
            )
        clipped = self._clip(rect)
        if not clipped:
            return clipped
        sub = pixels[
            clipped.y - rect.y : clipped.y2 - rect.y,
            clipped.x - rect.x : clipped.x2 - rect.x,
        ]
        view = self._view(clipped)
        view[:, :] = over(sub, view)
        self.pixels_drawn += clipped.area
        return clipped

    def copy_area(self, src: Rect, dst_x: int, dst_y: int) -> Rect:
        """Intra-framebuffer blit (COPY analogue), safe for overlap.

        Both source and destination are clipped to the framebuffer; when
        the source is clipped, the destination shrinks in step so that the
        copied pixels stay aligned.
        """
        src_clipped = self._clip(src)
        if not src_clipped:
            return src_clipped
        dx = dst_x + (src_clipped.x - src.x)
        dy = dst_y + (src_clipped.y - src.y)
        dst = Rect(dx, dy, src_clipped.width, src_clipped.height)
        dst_clipped = self._clip(dst)
        if not dst_clipped:
            return dst_clipped
        # Shrink the source to the part whose destination survived clipping.
        src_final = Rect(
            src_clipped.x + (dst_clipped.x - dst.x),
            src_clipped.y + (dst_clipped.y - dst.y),
            dst_clipped.width,
            dst_clipped.height,
        )
        # np copy of the source first makes overlapping copies safe.
        block = self._view(src_final).copy()
        self._view(dst_clipped)[:, :] = block
        self.pixels_drawn += dst_clipped.area
        return dst_clipped

    def read_pixels(self, rect: Rect) -> np.ndarray:
        """Return a copy of the pixels in *rect* (clipped)."""
        clipped = self._clip(rect)
        return self._view(clipped).copy()

    def clone(self) -> "Framebuffer":
        """An independent same-size copy of this framebuffer's contents.

        The sanctioned way for other layers to duplicate a framebuffer
        (e.g. to composite an overlay for display) without touching the
        backing array, which belongs to ``repro.display``.
        """
        out = Framebuffer(self.width, self.height)
        np.copyto(out.data, self.data)
        return out

    # -- comparison helpers (used heavily by integration tests) -----------

    def same_as(self, other: "Framebuffer") -> bool:
        return (
            self.width == other.width
            and self.height == other.height
            and bool(np.array_equal(self.data, other.data))
        )

    def diff_area(self, other: "Framebuffer") -> int:
        """Number of pixels that differ between two same-size framebuffers."""
        if (self.width, self.height) != (other.width, other.height):
            raise ValueError("framebuffer sizes differ")
        return int(np.any(self.data != other.data, axis=2).sum())

    def checksum(self) -> int:
        """A cheap content hash for change detection in tests."""
        import zlib

        return zlib.adler32(self.data.tobytes())

    def __repr__(self) -> str:
        return f"Framebuffer({self.width}x{self.height})"
