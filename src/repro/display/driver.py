"""The video device driver interface.

This is the boundary the paper's whole design revolves around: a
well-defined, low-level, device-dependent layer between the window
server and the hardware.  The simulated window server decomposes every
application request into calls on this interface, passing along the full
semantic information a real driver sees (operation kind, geometry,
colours, tiles, stipples, source drawables).

A hardware driver would program a GPU here.  THINC instead implements
this interface with a *virtual* driver that translates each call into
protocol commands (``repro.core.translation``).  The baseline systems
implement it at lower fidelity — e.g. VNC's "driver" merely accumulates
damage rectangles, discarding the semantics, exactly as screen scraping
does.

Drivers never render; the window server performs the software rendering
into the drawable's framebuffer *before* invoking the hook, so the hook
observes an operation that has already (conceptually) hit video memory.
All rectangles passed to hooks are pre-clipped to the drawable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..region import Rect
from .pixmap import Drawable

__all__ = ["DisplayDriver", "NullDriver", "RecordingDriver", "InputEvent",
           "VideoStreamInfo"]

Color = Tuple[int, int, int, int]


@dataclass(frozen=True)
class InputEvent:
    """A user input event forwarded from client to server.

    THINC's delivery scheduler uses the location of the most recent
    events to mark nearby updates as real-time (Section 5).
    """

    kind: str  # "mouse-move" | "mouse-click" | "key"
    x: int
    y: int
    time: float
    detail: str = ""


@dataclass
class VideoStreamInfo:
    """Server-side state for one XVideo stream (Section 4.2)."""

    stream_id: int
    pixel_format: str  # e.g. "YV12"
    src_width: int
    src_height: int
    dst_rect: Rect
    frames_put: int = 0


class DisplayDriver:
    """Abstract driver hooks mirroring an XAA/KAA-style interface.

    Subclasses override the hooks they care about; every hook has a
    no-op default so partial drivers (and test doubles) stay small.
    """

    # -- 2D acceleration hooks ------------------------------------------

    def solid_fill(self, drawable: Drawable, rect: Rect, color: Color) -> None:
        """A solid colour fill hit *rect* of *drawable*."""

    def pattern_fill(self, drawable: Drawable, rect: Rect,
                     tile: np.ndarray, origin: Tuple[int, int]) -> None:
        """A tile was replicated over *rect* (anchored at *origin*)."""

    def bitmap_fill(self, drawable: Drawable, rect: Rect, mask: np.ndarray,
                    fg: Color, bg: Optional[Color]) -> None:
        """A 1-bit stipple was expanded over *rect* with fg/bg colours.

        ``bg is None`` means a transparent stipple: untouched zero bits.
        Glyph text arrives through this hook.
        """

    def put_image(self, drawable: Drawable, rect: Rect,
                  pixels: np.ndarray) -> None:
        """Raw client-supplied pixels were stored into *rect*."""

    def composite(self, drawable: Drawable, rect: Rect,
                  pixels: np.ndarray, operator: str) -> None:
        """An RGBA block was blended onto *rect* (Porter–Duff *operator*)."""

    def copy_area(self, src: Drawable, dst: Drawable, src_rect: Rect,
                  dst_x: int, dst_y: int) -> None:
        """Pixels were blitted between drawables (either may be offscreen)."""

    def destroy_drawable(self, drawable: Drawable) -> None:
        """An offscreen pixmap was freed; associated state can be dropped."""

    # -- XVideo hooks -----------------------------------------------------

    def video_setup(self, stream: VideoStreamInfo) -> None:
        """An application opened an XVideo port / created a stream."""

    def video_put(self, stream: VideoStreamInfo, yuv_planes: bytes,
                  dst_rect: Rect) -> None:
        """One video frame of YUV data was presented to *dst_rect*."""

    def video_move(self, stream: VideoStreamInfo, dst_rect: Rect) -> None:
        """The stream's output window moved or resized."""

    def video_teardown(self, stream: VideoStreamInfo) -> None:
        """The stream was closed."""

    # -- cursor -----------------------------------------------------------

    def cursor_set(self, pixels: np.ndarray,
                   hotspot: Tuple[int, int]) -> None:
        """The pointer shape changed (HxWx4 RGBA image + hotspot)."""

    # -- input ------------------------------------------------------------

    def input_event(self, event: InputEvent) -> None:
        """A user input event reached the server (for real-time regions)."""


class NullDriver(DisplayDriver):
    """A driver that ignores everything — the 'local PC' case."""


@dataclass
class _Call:
    name: str
    drawable_id: Optional[int]
    rect: Optional[Rect]


class RecordingDriver(DisplayDriver):
    """Records the hook sequence; used by unit tests and diagnostics."""

    def __init__(self) -> None:
        self.calls: List[_Call] = []

    def _rec(self, name: str, drawable: Optional[Drawable],
             rect: Optional[Rect]) -> None:
        self.calls.append(
            _Call(name, drawable.id if drawable else None, rect)
        )

    def solid_fill(self, drawable, rect, color):
        self._rec("solid_fill", drawable, rect)

    def pattern_fill(self, drawable, rect, tile, origin):
        self._rec("pattern_fill", drawable, rect)

    def bitmap_fill(self, drawable, rect, mask, fg, bg):
        self._rec("bitmap_fill", drawable, rect)

    def put_image(self, drawable, rect, pixels):
        self._rec("put_image", drawable, rect)

    def composite(self, drawable, rect, pixels, operator):
        self._rec("composite", drawable, rect)

    def copy_area(self, src, dst, src_rect, dst_x, dst_y):
        self._rec("copy_area", dst, Rect(dst_x, dst_y,
                                         src_rect.width, src_rect.height))

    def destroy_drawable(self, drawable):
        self._rec("destroy_drawable", drawable, None)

    def video_setup(self, stream):
        self.calls.append(_Call("video_setup", None, stream.dst_rect))

    def video_put(self, stream, yuv_planes, dst_rect):
        self.calls.append(_Call("video_put", None, dst_rect))

    def video_move(self, stream, dst_rect):
        self.calls.append(_Call("video_move", None, dst_rect))

    def video_teardown(self, stream):
        self.calls.append(_Call("video_teardown", None, None))

    def cursor_set(self, pixels, hotspot):
        self.calls.append(_Call("cursor_set", None,
                                Rect(hotspot[0], hotspot[1],
                                     pixels.shape[1], pixels.shape[0])))

    def input_event(self, event):
        self.calls.append(_Call("input_event", None,
                                Rect(event.x, event.y, 1, 1)))

    def names(self) -> List[str]:
        return [c.name for c in self.calls]
