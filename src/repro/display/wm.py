"""A simple stacking window manager over the window server.

The paper's workloads run full-screen applications, but the motivation
sections lean on ordinary desktop interaction — overlapping windows,
opaque window movement (which THINC's COPY accelerates), exposes that
force redraws.  This window manager provides that desktop substrate:

* each window owns an offscreen *backing pixmap* its application draws
  into (double buffering, Section 4.1's target pattern);
* the manager composites the visible parts of every window onscreen in
  stacking order, using region algebra to clip lower windows;
* moving a window blits the visible area with ``copy_area`` (COPY on
  the wire) and repairs newly exposed areas from backing stores.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..region import Rect, Region
from .pixmap import Drawable
from .xserver import WindowServer

__all__ = ["Window", "WindowManager", "TITLE_BAR_HEIGHT"]

Color = Tuple[int, int, int, int]

TITLE_BAR_HEIGHT = 14

_TITLE_ACTIVE = (52, 84, 160, 255)
_TITLE_INACTIVE = (120, 120, 136, 255)
_FRAME_COLOR = (80, 80, 92, 255)
_DESKTOP_COLOR = (58, 110, 110, 255)


@dataclass
class Window:
    """One managed window: frame geometry plus a backing pixmap."""

    wid: int
    title: str
    frame: Rect  # onscreen geometry including title bar
    backing: Drawable  # application-drawn content (frame-local)
    mapped: bool = True

    @property
    def content_rect(self) -> Rect:
        """The application content area, in screen coordinates."""
        return Rect(self.frame.x + 1, self.frame.y + TITLE_BAR_HEIGHT,
                    self.frame.width - 2,
                    self.frame.height - TITLE_BAR_HEIGHT - 1)


class WindowManager:
    """Stacking window management with backing-store repaints."""

    def __init__(self, ws: WindowServer,
                 desktop_color: Color = _DESKTOP_COLOR,
                 desktop_tile: Optional[np.ndarray] = None):
        self.ws = ws
        self.desktop_color = desktop_color
        self.desktop_tile = desktop_tile
        self._ids = itertools.count(1)
        # Bottom-to-top stacking order.
        self._stack: List[Window] = []
        self.paint_desktop(ws.screen.bounds)

    # -- queries --------------------------------------------------------------

    @property
    def windows(self) -> List[Window]:
        return list(self._stack)

    @property
    def focused(self) -> Optional[Window]:
        return self._stack[-1] if self._stack else None

    def window_at(self, x: int, y: int) -> Optional[Window]:
        """Topmost window containing the point (click routing)."""
        for window in reversed(self._stack):
            if window.mapped and window.frame.contains_point(x, y):
                return window
        return None

    def visible_region(self, window: Window) -> Region:
        """The part of *window* not hidden by higher windows."""
        region = Region.from_rect(
            window.frame.intersect(self.ws.screen.bounds))
        above = False
        for other in self._stack:
            if other is window:
                above = True
                continue
            if above and other.mapped:
                region.subtract_rect(other.frame)
        return region

    # -- desktop ---------------------------------------------------------------

    def paint_desktop(self, rect: Rect) -> None:
        if self.desktop_tile is not None:
            self.ws.fill_tiled(self.ws.screen, rect, self.desktop_tile)
        else:
            self.ws.fill_rect(self.ws.screen, rect, self.desktop_color)

    # -- window lifecycle --------------------------------------------------------

    def create_window(self, title: str, rect: Rect,
                      content_color: Color = (240, 240, 240, 255)
                      ) -> Window:
        """Map a new window at *rect* (content area sized to fit)."""
        if rect.width < 24 or rect.height < TITLE_BAR_HEIGHT + 8:
            raise ValueError("window too small to manage")
        backing = self.ws.create_pixmap(rect.width - 2,
                                        rect.height - TITLE_BAR_HEIGHT - 1,
                                        label=f"win-{title}")
        self.ws.fill_rect(backing, backing.bounds, content_color)
        window = Window(next(self._ids), title, rect, backing)
        previous_top = self._stack[-1] if self._stack else None
        self._stack.append(window)
        self._draw_frame(window)
        self._repair(self.visible_region(window), only=window)
        if previous_top is not None:
            # The old top window loses focus decoration.
            self._draw_frame(previous_top)
        return window

    def close_window(self, window: Window) -> None:
        if window not in self._stack:
            raise ValueError("window is not managed")
        exposed = self.visible_region(window)
        self._stack.remove(window)
        self.ws.free_pixmap(window.backing)
        self._expose(exposed)
        if self._stack:
            self._draw_frame(self._stack[-1])  # new focus decoration

    # -- stacking and movement ---------------------------------------------------

    def raise_window(self, window: Window) -> None:
        """Bring to front and repaint the newly uncovered parts."""
        if window not in self._stack:
            raise ValueError("window is not managed")
        was_hidden = Region.from_rect(window.frame).subtract(
            self.visible_region(window))
        previous_top = self._stack[-1]
        self._stack.remove(window)
        self._stack.append(window)
        self._repair(was_hidden, only=window)
        if previous_top is not window:
            self._draw_frame(previous_top)
            self._draw_frame(window)

    def move_window(self, window: Window, dx: int, dy: int) -> None:
        """Opaque window move: COPY the visible part, repair the rest."""
        if window not in self._stack:
            raise ValueError("window is not managed")
        old_frame = window.frame
        visible_before = self.visible_region(window)
        window.frame = old_frame.translate(dx, dy)
        # Blit what was visible and stays on screen (COPY on the wire).
        for rect in visible_before:
            dest = rect.translate(dx, dy).intersect(self.ws.screen.bounds)
            if dest:
                src = dest.translate(-dx, -dy)
                self.ws.copy_area(self.ws.screen, self.ws.screen, src,
                                  dest.x, dest.y)
        # Parts of the window newly visible (were covered or offscreen).
        now_visible = self.visible_region(window)
        moved_blit = Region(
            [r.translate(dx, dy).intersect(self.ws.screen.bounds)
             for r in visible_before])
        self._repair(now_visible.subtract(moved_blit), only=window)
        # The area the window vacated shows what was underneath.
        vacated = visible_before.subtract(
            Region.from_rect(window.frame))
        self._expose(vacated)

    def resize_window(self, window: Window, new_width: int,
                      new_height: int) -> None:
        """Resize a window, preserving its content's top-left corner."""
        if window not in self._stack:
            raise ValueError("window is not managed")
        if new_width < 24 or new_height < TITLE_BAR_HEIGHT + 8:
            raise ValueError("window too small to manage")
        old_frame = window.frame
        old_backing = window.backing
        visible_before = self.visible_region(window)
        backing = self.ws.create_pixmap(
            new_width - 2, new_height - TITLE_BAR_HEIGHT - 1,
            label=old_backing.label)
        # Preserve the old content (apps then repaint as they wish).
        self.ws.fill_rect(backing, backing.bounds, (240, 240, 240, 255))
        self.ws.copy_area(old_backing, backing, old_backing.bounds, 0, 0)
        self.ws.free_pixmap(old_backing)
        window.backing = backing
        window.frame = Rect(old_frame.x, old_frame.y, new_width,
                            new_height)
        # Repaint the window at its new size, then repair anything the
        # shrink uncovered.
        self._repair(self.visible_region(window), only=window)
        vacated = visible_before.subtract(Region.from_rect(window.frame))
        self._expose(vacated)

    # -- drawing into windows --------------------------------------------------------

    def draw_in_window(self, window: Window,
                       draw: Callable[[WindowServer, Drawable], None]
                       ) -> None:
        """Run an application drawing function against the backing
        pixmap, then flush the visible result onscreen."""
        draw(self.ws, window.backing)
        content = window.content_rect
        visible = self.visible_region(window).intersect_rect(content)
        for rect in visible:
            src = Rect(rect.x - content.x, rect.y - content.y,
                       rect.width, rect.height)
            self.ws.copy_area(window.backing, self.ws.screen, src,
                              rect.x, rect.y)

    # -- internals ------------------------------------------------------------------

    def _draw_frame(self, window: Window) -> None:
        """Title bar + border, clipped to the window's visible region."""
        visible = self.visible_region(window)
        frame = window.frame
        focused = self._stack and self._stack[-1] is window
        title_color = _TITLE_ACTIVE if focused else _TITLE_INACTIVE
        bar = Rect(frame.x, frame.y, frame.width, TITLE_BAR_HEIGHT)
        for rect in visible.intersect_rect(bar):
            self.ws.fill_rect(self.ws.screen, rect, title_color)
        # Title text, clipped to the visible part of its strip so a
        # repaint produces exactly what an opaque move would have
        # blitted.
        text_rect = Rect(frame.x + 4, frame.y + 3,
                         min(len(window.title) * 6, frame.width - 8), 7)
        text_visible = visible.intersect_rect(text_rect)
        if text_visible:
            with self.ws.clip(text_visible):
                self.ws.draw_text(self.ws.screen, text_rect.x,
                                  text_rect.y, window.title,
                                  (255, 255, 255, 255))
        for edge in (
            Rect(frame.x, frame.y2 - 1, frame.width, 1),
            Rect(frame.x, frame.y, 1, frame.height),
            Rect(frame.x2 - 1, frame.y, 1, frame.height),
        ):
            for rect in visible.intersect_rect(edge):
                self.ws.fill_rect(self.ws.screen, rect, _FRAME_COLOR)

    def _repair(self, region: Region, only: Window) -> None:
        """Repaint parts of one window from its backing store."""
        if region.is_empty:
            return
        content = only.content_rect
        for rect in region:
            body = rect.intersect(content)
            if body:
                src = Rect(body.x - content.x, body.y - content.y,
                           body.width, body.height)
                self.ws.copy_area(only.backing, self.ws.screen, src,
                                  body.x, body.y)
        self._draw_frame(only)

    def _expose(self, region: Region) -> None:
        """Repaint an exposed area: desktop, then windows bottom-up."""
        for rect in region:
            self.paint_desktop(rect)
        for window in self._stack:
            if not window.mapped:
                continue
            overlap = region.intersect_rect(window.frame)
            visible = self.visible_region(window)
            self._repair(overlap.intersect(visible), only=window)
