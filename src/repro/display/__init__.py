"""The display substrate: framebuffer, window server, driver interface."""

from .compositing import apply_operator, over
from .driver import (DisplayDriver, InputEvent, NullDriver, RecordingDriver,
                     VideoStreamInfo)
from .framebuffer import CHANNELS, Framebuffer, make_tile, solid_pixels
from .pixmap import Drawable
from .xserver import AppCommand, WindowServer

__all__ = [
    "Framebuffer",
    "solid_pixels",
    "make_tile",
    "CHANNELS",
    "Drawable",
    "DisplayDriver",
    "NullDriver",
    "RecordingDriver",
    "InputEvent",
    "VideoStreamInfo",
    "WindowServer",
    "AppCommand",
    "over",
    "apply_operator",
]
