"""Packaging for the THINC (SOSP 2005) reproduction.

Kept as a plain setup.py (rather than pyproject.toml) because the target
environment is offline and lacks the `wheel` package PEP 517 editable
installs require; the legacy `setup.py develop` path works everywhere.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "THINC: a virtual display architecture for thin-client computing "
        "(SOSP 2005) - full-system reproduction"
    ),
    long_description=open("README.md").read() if __import__("os").path.exists("README.md") else "",
    long_description_content_type="text/markdown",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
