# Convenience targets for the THINC reproduction.

PY ?= python

.PHONY: install test lint analyze contracts-doc sanitize chaos fuzz fuzz-smoke cluster-smoke fanout-smoke qos-smoke ci bench bench-smoke bench-figures figures figures-paper protocol-doc examples clean

install:
	$(PY) setup.py develop

test:
	pytest tests/

lint:
	@if command -v ruff >/dev/null 2>&1; then ruff check .; \
	else echo "ruff not installed; skipping lint"; fi

# THINC-specific invariants: thinclint AST rules + import layering,
# then the whole-program THL2xx contract pass (spec conformance,
# parser direction sets, dead wire ids, serialization drift, clock
# discipline over src+tests+benchmarks) gated by the committed
# findings baseline.  The second pass also regenerates the
# conformance matrix in memory and fails if docs/CONTRACTS.md is
# stale.  Fails on any finding *or* any suppression inside src/repro.
analyze:
	PYTHONPATH=src $(PY) -m repro.analysis --list-suppressions
	PYTHONPATH=src $(PY) -m repro.analysis --contracts \
	  --matrix-check docs/CONTRACTS.md

# Regenerate the committed conformance matrix after protocol changes.
contracts-doc:
	PYTHONPATH=src $(PY) -m repro.analysis --contracts \
	  --matrix-out docs/CONTRACTS.md

# Tier-1 suite with every command queue self-checking its replay
# invariants after each mutation (see docs/ANALYSIS.md).
sanitize:
	THINC_SANITIZE=1 PYTHONPATH=src $(PY) -m pytest -x -q

# Deterministic chaos suite: fault-injected transport + resilience
# plane, run with the queue sanitizer armed at three fixed seeds
# (each seed selects a different random fault schedule; any failure
# replays exactly from its seed).  See docs/RESILIENCE.md.
chaos:
	@for seed in 11 23 47; do \
	  echo "== chaos seed $$seed =="; \
	  THINC_SANITIZE=1 THINC_CHAOS_SEED=$$seed PYTHONPATH=src \
	  $(PY) -m pytest tests/net/test_faults.py \
	    tests/core/test_resilience.py \
	    tests/core/test_qos_chaos.py \
	    tests/cluster/test_migration.py \
	    tests/fanout/test_migration_fanout.py -x -q || exit 1; \
	done

# End-to-end shard-fabric smoke: 2 shards x 8 sessions behind the
# relay, one live migration mid-workload, queue sanitizer armed, and a
# pixel-identity assertion per client.  See docs/CLUSTER.md.
cluster-smoke:
	THINC_SANITIZE=1 PYTHONPATH=src $(PY) -m repro.cluster.smoke \
	  --shards 2 --sessions 8 --migrations 1

# Deterministic protocol fuzzing: seed-driven mutated uplink traffic
# against a live server rig with an honest co-resident session, with
# the queue sanitizer armed.  Exits nonzero on any contract violation
# (crash, stall, pixel divergence, budget bust) and saves the
# offending input under tests/fuzz/corpus/.  See docs/HARDENING.md.
fuzz:
	THINC_SANITIZE=1 PYTHONPATH=src $(PY) -m repro.fuzz \
	  --seeds 1 2 3 --frames 500 --replay tests/fuzz/corpus

# Quick single-seed fuzz pass for local pre-commit checks.
fuzz-smoke:
	PYTHONPATH=src $(PY) -m repro.fuzz --seeds 1 --frames 150 \
	  --replay tests/fuzz/corpus

# What .github/workflows/ci.yml runs: lint gates + the tier-1 suite.
ci: lint analyze
	PYTHONPATH=src $(PY) -m pytest -x -q

# Micro-performance harness: region ops, queue churn, codec plane,
# pipeline throughput, shard-fabric scaling/migration, the PR-9
# broadcast fan-out / tile-wall numbers, and the PR-10 adaptive-QoS
# contention ladder.  Writes BENCH_PR10.json at the repo root (see
# docs/PERF.md).
bench:
	PYTHONPATH=src $(PY) -m repro.bench.microperf --out BENCH_PR10.json

# Fan-out smoke: a quick 20-subscriber broadcast + tile-wall run that
# must hold the < 3x prepare-CPU gate, then a schema check of the
# committed BENCH_PR10.json.  See docs/FANOUT.md.
fanout-smoke:
	PYTHONPATH=src $(PY) -m repro.bench.microperf --fanout-smoke

# QoS smoke: the acceptance scenario at four cross-traffic duty
# cycles.  Fails unless every contended level holds the < 2x
# interactive-latency gate, the heavy level engages the ladder, the
# uncontended twin stays byte-identical to the fixed-rate path, and
# the heavy run recovers pixel-exact to rung 0; then schema-checks the
# committed BENCH_PR10.json.  See docs/QOS.md.
qos-smoke:
	PYTHONPATH=src $(PY) -m repro.bench.microperf --qos-smoke

# CI smoke mode: small workloads, then schema-validate the report.
bench-smoke:
	PYTHONPATH=src $(PY) -m repro.bench.microperf --quick --out bench-smoke.json
	PYTHONPATH=src $(PY) -m repro.bench.microperf --validate bench-smoke.json
	rm -f bench-smoke.json

# The pytest-benchmark figure timings (the pre-PR3 `make bench`).
bench-figures:
	pytest benchmarks/ --benchmark-only

# Regenerate every evaluation figure at the fast default scale.
figures:
	$(PY) examples/run_all_figures.py

# Paper-scale workloads (54 pages, 834 frames); takes a long while.
figures-paper:
	$(PY) examples/run_all_figures.py --pages 54 --frames 834

# Re-render docs/PROTOCOL.md from the machine-readable spec.
protocol-doc:
	$(PY) -c "from repro.protocol.spec import render_protocol_reference as r; \
	open('docs/PROTOCOL.md','w').write(r())"

examples:
	$(PY) examples/quickstart.py
	$(PY) examples/translation_inspector.py
	$(PY) examples/desktop_session.py
	$(PY) examples/collaboration.py
	$(PY) examples/pda_navigation.py
	$(PY) examples/shard_fanout.py

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf src/repro.egg-info .pytest_cache .hypothesis .benchmarks
