#!/usr/bin/env python
"""Thin clients across the planet: the Table 2 remote-site experiment.

The paper's most striking claim is that a thin client can be *usable
from another continent*: THINC keeps sub-second page loads and perfect
video from every site except Korea — and Korea's problem is not the
link but a PlanetLab TCP window capped at 256 KB, which over a ~190 ms
RTT cannot carry the ~24 Mbps video stream.  This example reruns both
workloads from every site and then "fixes" Korea by widening its
window, showing the bottleneck is exactly where the paper says.

Run:  python examples/global_sessions.py
"""

from repro.bench.reporting import format_ms, format_pct, format_table
from repro.bench.sites import REMOTE_SITES, site_link
from repro.bench.testbed import run_av_benchmark, run_web_benchmark
from repro.net import LinkParams

PAGES = 3
FRAMES = 72


def main() -> None:
    rows = []
    for site in REMOTE_SITES:
        link = site_link(site)
        web = run_web_benchmark("THINC", link, site.code, page_count=PAGES)
        av = run_av_benchmark("THINC", link, site.code, max_frames=FRAMES)
        rows.append([
            f"{site.code:4s}{site.location}",
            f"{site.distance_miles:>6d}",
            f"{site.rtt * 1000:6.0f}",
            "256 KB" if site.planetlab else "1 MB",
            format_ms(web.mean_latency),
            format_pct(av.av_quality),
        ])
    print(format_table(
        "THINC from remote sites (server in New York)",
        ["site", "miles", "RTT ms", "TCP win", "page latency",
         "A/V quality"],
        rows))

    # The Korea fix: same distance, proper window.
    kr = next(s for s in REMOTE_SITES if s.code == "KR")
    capped = site_link(kr)
    widened = LinkParams("KR-wide", capped.bandwidth_bps, capped.rtt,
                         tcp_window=1 << 20)
    before = run_av_benchmark("THINC", capped, "KR", max_frames=FRAMES)
    after = run_av_benchmark("THINC", widened, "KR-wide", max_frames=FRAMES)
    print()
    print(f"Korea with its capped 256 KB window : "
          f"{format_pct(before.av_quality)} A/V quality "
          f"({before.bandwidth_mbps:.1f} Mbps achievable)")
    print(f"Korea with a 1 MB window            : "
          f"{format_pct(after.av_quality)} A/V quality "
          f"({after.bandwidth_mbps:.1f} Mbps)")
    print("-> the limit is the TCP window, not the distance.")


if __name__ == "__main__":
    main()
