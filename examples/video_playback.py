#!/usr/bin/env python
"""Full-screen video playback: native video support vs screen scraping.

The paper's headline result: THINC is the only thin client that plays
full-screen video at full frame rate, because YV12 frames cross the
wire and the *client's* hardware scales them — while a scraper must
re-encode every displayed frame as opaque pixels.  This example plays
the benchmark clip (truncated for speed) through THINC and VNC on a
desktop LAN, then shows THINC's server-side resizing cutting the PDA
stream to a few Mbit/s at unchanged quality.

Run:  python examples/video_playback.py  [frames]
"""

import sys

from repro.bench.reporting import format_pct, format_table
from repro.bench.testbed import run_av_benchmark
from repro.net import LAN_DESKTOP, PDA_80211G


def main(frames: int = 96) -> None:
    rows = []
    for label, name, link, viewport in [
        ("LAN Desktop", "THINC", LAN_DESKTOP, None),
        ("LAN Desktop", "VNC", LAN_DESKTOP, None),
        ("802.11g PDA", "THINC", PDA_80211G, (320, 240)),
    ]:
        run = run_av_benchmark(name, link, label, max_frames=frames,
                               viewport=viewport)
        rows.append([
            name, label,
            format_pct(run.av_quality),
            f"{run.frames_received}/{run.frames_sent}",
            f"{run.bandwidth_mbps:.1f} Mbps",
        ])
    print(format_table(
        "A/V playback: 352x240 clip at 24 fps, displayed full screen",
        ["platform", "network", "A/V quality", "frames", "bandwidth"],
        rows,
        note="THINC PDA row: server-side resize, same 100% quality"))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 96)
