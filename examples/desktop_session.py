#!/usr/bin/env python
"""A scripted desktop session: windows, typing, moves, video — remote.

Drives a small desktop (window manager, cursor, overlapping windows, a
video window) through THINC over a WAN link, then reports what the
session cost on the wire, broken down by protocol command — the
workload mix the paper's motivation sections describe.

Run:  python examples/desktop_session.py
"""

import io

import numpy as np

from repro.bench.analysis import command_mix
from repro.bench.reporting import format_table
from repro.core import THINCClient, THINCServer
from repro.display import WindowServer
from repro.display.wm import WindowManager
from repro.net import Connection, EventLoop, PacketMonitor, WAN_DESKTOP
from repro.protocol.trace import TraceRecorder, read_trace
from repro.region import Rect
from repro.video.stream import SyntheticVideoClip

BLACK = (10, 10, 10, 255)


def main() -> None:
    loop = EventLoop()
    monitor = PacketMonitor()
    conn = Connection(loop, WAN_DESKTOP, monitor=monitor)
    server = THINCServer(loop, 640, 480)
    ws = WindowServer(640, 480, driver=server.driver, clock=loop.clock)
    server.attach_client(conn)
    client = THINCClient(loop, conn)
    # Record the downstream protocol for the command-mix breakdown.
    trace_sink = io.BytesIO()
    recorder = TraceRecorder(trace_sink, loop.clock)
    conn.down.connect(recorder.tee(client._on_data))

    wm = WindowManager(ws)
    # An arrow cursor, pushed once.
    arrow = np.zeros((12, 8, 4), dtype=np.uint8)
    for i in range(8):
        arrow[i, : i + 1] = (0, 0, 0, 255)
    ws.set_cursor(arrow)

    editor = wm.create_window("editor", Rect(30, 30, 280, 200))
    terminal = wm.create_window("terminal", Rect(180, 120, 280, 200),
                                content_color=(20, 20, 28, 255))

    # The user types into the terminal...
    def type_line(n):
        wm.draw_in_window(terminal, lambda s, d: s.draw_text(
            d, 6, 6 + n * 10, f"$ make check  # line {n}",
            (120, 255, 120, 255)))

    for n in range(6):
        loop.schedule(0.2 * n, lambda n=n: type_line(n))

    # ...then drags it aside and works in the editor...
    loop.schedule(1.4, lambda: wm.move_window(terminal, 120, 90))
    loop.schedule(1.6, lambda: wm.raise_window(editor))
    loop.schedule(1.8, lambda: wm.draw_in_window(
        editor, lambda s, d: s.draw_text(d, 6, 6,
                                         "def main():", BLACK)))

    # ...and opens a small video window.
    clip = SyntheticVideoClip(width=64, height=48, fps=24, duration=1.0)

    def start_video():
        stream = ws.video_create_stream("YV12", 64, 48,
                                        Rect(420, 40, 160, 120))

        def put(i):
            if i < clip.frame_count:
                ws.video_put_frame(stream, clip.yv12_frame(i))
                loop.schedule(clip.frame_interval, lambda: put(i + 1))
            else:
                ws.video_destroy_stream(stream)

        put(0)

    loop.schedule(2.0, start_video)
    end = loop.run_until_idle(max_time=30)

    print(f"session length           : {end:.2f} s (simulated)")
    print(f"pixel-exact at client    : {client.fb.same_as(ws.screen.fb)}")
    print(f"cursor shape at client   : "
          f"{client.cursor_image is not None}")
    print(f"bytes on the wire        : {monitor.total_bytes():,}")
    mix = command_mix(read_trace(trace_sink.getvalue()))
    print()
    print(format_table(
        "wire breakdown by protocol command",
        ["command", "count", "bytes", "share"],
        mix.table_rows()))


if __name__ == "__main__":
    main()
