#!/usr/bin/env python
"""Web browsing comparison: THINC vs X vs VNC across LAN and WAN.

Reproduces a slice of the paper's Figure 2/3 methodology interactively:
the i-Bench-style page sequence is clicked through on each platform and
slow-motion benchmarking reads latency and data volume from the packet
trace.  Watch two effects the paper highlights:

* X's synchronous client/server coupling makes it degrade far more
  than THINC when the RTT grows (LAN -> WAN), and
* VNC's screen scraping costs a multiple of THINC's data because the
  drawing semantics are gone by the time pixels leave the server.

Run:  python examples/web_browsing.py  [pages]
"""

import sys

from repro.bench.reporting import format_mbytes, format_ms, format_table
from repro.bench.testbed import run_web_benchmark
from repro.net import LAN_DESKTOP, WAN_DESKTOP

PLATFORMS = ["THINC", "X", "VNC"]


def main(pages: int = 6) -> None:
    rows = []
    slowdowns = {}
    for network, link, wan in [("LAN", LAN_DESKTOP, False),
                               ("WAN 66ms", WAN_DESKTOP, True)]:
        for name in PLATFORMS:
            run = run_web_benchmark(name, link, network, page_count=pages,
                                    wan_mode=wan)
            rows.append([name, network, format_ms(run.mean_latency),
                         format_mbytes(run.mean_page_bytes)])
            slowdowns.setdefault(name, []).append(run.mean_latency)
    print(format_table(
        "Web browsing: THINC vs X vs VNC",
        ["platform", "network", "page latency", "data/page"], rows))
    print()
    for name, (lan, wan) in slowdowns.items():
        print(f"{name:6s} LAN->WAN slowdown: {wan / lan:4.1f}x")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6)
