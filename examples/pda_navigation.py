#!/usr/bin/env python
"""Small-screen navigation: zoomed-out overview, then zoom in.

Section 6's interaction model for handhelds: the PDA first shows a
zoomed-out rendition of the whole desktop; the user picks a region and
zooms in; the server rescales all subsequent updates from that region
and pushes a refresh with the detail the client never had.  All the
resampling happens server-side — the handheld only ever executes plain
protocol commands.

Run:  python examples/pda_navigation.py
"""

from repro.core import THINCClient, THINCServer
from repro.display import WindowServer
from repro.net import Connection, EventLoop, PDA_80211G, PacketMonitor
from repro.region import Rect
from repro.workloads.web import WebBrowserApp, make_page_set

VIEWPORT = (320, 240)


def legibility(client, text_rect):
    """A crude legibility proxy: contrast inside the text area."""
    region = client.fb.read_pixels(text_rect)
    return int(region[..., :3].astype(int).max()
               - region[..., :3].astype(int).min())


def main() -> None:
    loop = EventLoop()
    monitor = PacketMonitor()
    conn = Connection(loop, PDA_80211G, monitor=monitor)
    server = THINCServer(loop, 1024, 768)
    ws = WindowServer(1024, 768, driver=server.driver, clock=loop.clock)
    server.attach_client(conn, viewport=VIEWPORT)
    client = THINCClient(loop, conn)

    # A full web page renders on the 1024x768 session.
    browser = WebBrowserApp(ws, make_page_set(count=1))
    browser.render_page(0)
    loop.run_until_idle(max_time=10)
    overview_bytes = monitor.total_bytes("server->client")
    text_area = Rect(10, 20, 140, 40)  # body text, in client coords
    overview_contrast = legibility(client, text_area)

    # The user zooms in on the page's upper-left article column.
    client.request_zoom(Rect(0, 0, 512, 384))
    loop.run_until_idle(max_time=10)
    zoom_bytes = monitor.total_bytes("server->client") - overview_bytes
    zoom_contrast = legibility(client, text_area)

    print(f"viewport                  : {VIEWPORT[0]}x{VIEWPORT[1]} "
          f"showing a 1024x768 session")
    print(f"overview (whole desktop)  : {overview_bytes:,} bytes, "
          f"text contrast {overview_contrast}")
    print(f"zoomed (512x384 region)   : +{zoom_bytes:,} bytes for the "
          f"refresh, text contrast {zoom_contrast}")
    print(f"zoom sharpened the text   : {zoom_contrast > overview_contrast}")
    print("(anti-aliased server-side resampling keeps even the overview "
          "readable,")
    print(" unlike the client-side resize the paper compares against)")


if __name__ == "__main__":
    main()
