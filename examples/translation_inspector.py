#!/usr/bin/env python
"""Inspect the translation layer: what does each drawing op become?

Drives the window server through the operations a desktop generates —
text, fills, tiles, images, scrolls, double-buffered window flips — and
prints, for each, the protocol commands THINC's virtual driver emitted
and their wire cost.  This makes the paper's Section 4 visible:
one-to-one mappings, per-glyph stipples merging into one BITMAP,
scan-line image chunks merging into one RAW, offscreen drawing shipping
as replayed *commands* rather than pixels.

Run:  python examples/translation_inspector.py
"""

import numpy as np

from repro.core.translation import THINCDriver
from repro.display import WindowServer, solid_pixels
from repro.region import Rect

BLACK = (10, 10, 10, 255)
WHITE = (255, 255, 255, 255)
BLUE = (40, 80, 200, 255)


class Tap:
    """An UpdateSink that aggregates like the per-client buffer does.

    The driver translates each driver-level call one-to-one; the
    *delivery* layer's command queue then merges adjacent commands
    (Section 4's aggregation principle).  The tap counts both stages.
    """

    def __init__(self):
        from repro.core import CommandQueue

        self.queue = CommandQueue()
        self.raw_count = 0

    def submit(self, command):
        self.raw_count += 1
        self.queue.add(command)

    def video_setup(self, stream):
        pass

    def video_move(self, stream):
        pass

    def video_teardown(self, stream):
        pass

    def note_input(self, event):
        pass

    def take(self):
        out = self.queue.drain()
        count, self.raw_count = self.raw_count, 0
        return count, out


def describe(label, taken):
    raw_count, commands = taken
    print(f"\n{label}")
    if not commands:
        print("   (nothing sent - drawing stayed offscreen)")
        return
    print(f"   driver emitted {raw_count} command(s); "
          f"buffered as {len(commands)}:")
    for cmd in commands:
        print(f"   -> {cmd.kind.upper():9s} {cmd.dest.width:4d}x"
              f"{cmd.dest.height:<4d} at ({cmd.dest.x},{cmd.dest.y})"
              f"  {cmd.wire_size():7d} bytes on the wire")


def main() -> None:
    tap = Tap()
    driver = THINCDriver(tap)
    ws = WindowServer(640, 480, driver=driver)

    ws.fill_rect(ws.screen, ws.screen.bounds, WHITE)
    describe("fill_rect(whole screen)  [one-to-one: SFILL]", tap.take())

    ws.draw_text(ws.screen, 20, 20, "forty-two glyphs of text merge "
                 "into one...", BLACK)
    describe("draw_text(42 chars)  [42 stipples merge into one BITMAP]",
             tap.take())

    rng = np.random.default_rng(7)
    ws.put_image(ws.screen, Rect(20, 60, 200, 120),
                 rng.integers(0, 256, (120, 200, 4), dtype=np.uint8))
    describe("put_image(200x120 photo)  [15 scan-line chunks merge into "
             "one compressed RAW]", tap.take())

    tile = solid_pixels(8, 8, (230, 230, 240, 255))
    tile[::4, ::4] = (180, 180, 200, 255)
    ws.fill_tiled(ws.screen, Rect(20, 200, 300, 80), tile)
    describe("fill_tiled(300x80)  [tile travels once: PFILL]", tap.take())

    ws.copy_area(ws.screen, ws.screen, Rect(20, 60, 200, 120), 340, 60)
    describe("copy_area(scroll/move)  [no pixels resent: COPY]", tap.take())

    # The paper's key optimisation: double-buffered window rendering.
    window = ws.create_pixmap(240, 160)
    ws.fill_rect(window, window.bounds, BLUE)
    ws.draw_text(window, 10, 10, "composed offscreen", WHITE)
    describe("offscreen composition (pixmap fill + text)", tap.take())
    ws.copy_area(window, ws.screen, window.bounds, 40, 300)
    describe("copy offscreen->onscreen  [queued commands replayed, "
             "no RAW fallback]", tap.take())

    print(f"\ndriver stats: {driver.stats}")


if __name__ == "__main__":
    main()
