#!/usr/bin/env python
"""Screen sharing: one session, many clients, session-password auth.

The paper's Section 7 extends THINC's authentication for collaboration:
the session owner sets a session password and peers who present it join
the same display session; every client then sees the same desktop
(updates are multiplexed to all), each scaled to its own viewport.

This example walks the whole flow: accounts, ownership checks, a
rejected intruder, a peer joining mid-session (and receiving the
current screen), and a PDA-sized peer getting server-resized updates.

Run:  python examples/collaboration.py
"""

from repro.core import THINCClient, THINCServer
from repro.core.auth import (AccountDatabase, AuthError, Authenticator,
                             SessionRegistry)
from repro.display import WindowServer
from repro.net import Connection, EventLoop, LAN_DESKTOP, WAN_DESKTOP
from repro.region import Rect

WHITE = (255, 255, 255, 255)
INK = (20, 20, 40, 255)


def main() -> None:
    # -- the access-control plane (Section 7) -------------------------
    accounts = AccountDatabase()
    accounts.add_user("alice", "curiouser")
    accounts.add_user("bob", "bricks")
    accounts.add_user("mallory", "sneaky")
    sessions = SessionRegistry()
    sessions.create("alice:0", owner="alice")
    auth = Authenticator(accounts, sessions)

    # Alice owns the session and opens it for collaboration.
    print("alice connects:",
          auth.authenticate("alice", "curiouser", "alice:0").role)
    sessions.get("alice:0").enable_sharing("design-review")

    # Mallory knows a valid account but not the session password.
    try:
        auth.authenticate("mallory", "sneaky", "alice:0",
                          share_password="guess")
    except AuthError as exc:
        print("mallory rejected:", exc)

    print("bob joins:",
          auth.authenticate("bob", "bricks", "alice:0",
                            share_password="design-review").role)

    # -- the display plane ------------------------------------------------
    loop = EventLoop()
    server = THINCServer(loop, 400, 300)
    ws = WindowServer(400, 300, driver=server.driver, clock=loop.clock)

    alice_conn = Connection(loop, LAN_DESKTOP)
    server.attach_client(alice_conn)
    alice = THINCClient(loop, alice_conn)

    # Alice starts working before Bob arrives.
    ws.fill_rect(ws.screen, ws.screen.bounds, WHITE)
    ws.draw_text(ws.screen, 10, 10, "design review notes", INK)
    ws.draw_rect_outline(ws.screen, Rect(10, 30, 200, 120), INK)
    loop.run_until_idle(max_time=5)

    # Bob joins mid-session over a WAN, on a small-screen device: he
    # receives the current screen, resized by the server.
    bob_conn = Connection(loop, WAN_DESKTOP)
    server.attach_client(bob_conn, viewport=(200, 150))
    bob = THINCClient(loop, bob_conn)
    loop.run_until_idle(max_time=5)

    # Further drawing reaches both.
    ws.draw_text(ws.screen, 16, 40, "bob: looks good", (160, 30, 30, 255))
    loop.run_until_idle(max_time=5)

    print(f"alice pixel-exact  : {alice.fb.same_as(ws.screen.fb)}")
    print(f"bob viewport       : {bob.fb.width}x{bob.fb.height} "
          f"(server 400x300)")
    print(f"bob has content    : {bob.total_commands() > 0} "
          f"({bob.total_commands()} commands)")


if __name__ == "__main__":
    main()
