#!/usr/bin/env python
"""Regenerate every figure of the paper's evaluation in one run.

This is the driver used to produce EXPERIMENTS.md: it runs the web and
A/V benchmarks over the three testbed networks and the eleven remote
sites and prints the six figure tables.  Scale knobs:

    python examples/run_all_figures.py              # default (fast)
    python examples/run_all_figures.py --pages 54 --frames 834   # paper scale

At paper scale expect a long run; the defaults (8 pages, 120 frames)
measure the same steady-state quantities in a few minutes.
"""

import argparse
import time

from repro.bench.experiments import (av_figures, fig4_web_remote,
                                     fig7_av_remote, web_figures)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pages", type=int, default=8,
                        help="web pages per run (paper: 54)")
    parser.add_argument("--frames", type=int, default=120,
                        help="video frames per run (paper: 834)")
    parser.add_argument("--remote-pages", type=int, default=4)
    parser.add_argument("--remote-frames", type=int, default=96)
    args = parser.parse_args()

    t0 = time.time()
    web = web_figures(args.pages)
    print(web.latency_table())
    print()
    print(web.data_table())
    print()
    print(fig4_web_remote(args.remote_pages))
    print()
    av = av_figures(args.frames)
    print(av.quality_table())
    print()
    print(av.data_table())
    print()
    print(fig7_av_remote(args.remote_frames))
    print()
    print(f"[all figures regenerated in {time.time() - t0:.0f} s "
          f"({args.pages} pages, {args.frames} frames)]")


if __name__ == "__main__":
    main()
