#!/usr/bin/env python
"""Shard fan-out: one dial target, two servers, one live migration.

Builds the minimal cluster deployment — a :class:`ShardCoordinator`
owning two THINC shards behind a :class:`Relay` — and fans four thin
clients out across it.  The clients dial the relay with the ordinary
wire protocol and never learn the fabric exists; both shard screens
play the same drawing script (mirrored content), one session is
live-migrated between shards mid-script, and every client still ends
pixel-identical to its shard's screen.

Run:  python examples/shard_fanout.py
"""

from repro.cluster import ShardCoordinator
from repro.cluster.smoke import SMOKE_CONFIG
from repro.core.resilience import ResilientClient
from repro.display import WindowServer
from repro.net import Connection, EventLoop, LAN_DESKTOP
from repro.region import Rect

WHITE = (255, 255, 255, 255)
NAVY = (24, 40, 96, 255)
CORAL = (240, 108, 80, 255)


def main() -> None:
    loop = EventLoop()

    # Two complete THINC servers (shard 0 mints odd tokens, shard 1
    # even) sharing one prepared-command cache, behind one relay.
    coord = ShardCoordinator(loop, 2, 320, 240, resilience=SMOKE_CONFIG)

    # Each shard drives its own window server; the script below is
    # identical on both, so the screens stay mirrored — which is what
    # makes cross-shard migration seamless for the viewer.
    screens = [WindowServer(320, 240, driver=s.driver, clock=loop.clock)
               for s in coord.shards]
    for ws in screens:
        ws.fill_rect(ws.screen, ws.screen.bounds, NAVY)
        for n in range(6):
            loop.schedule(0.1 + 0.1 * n, lambda ws=ws, n=n: (
                ws.fill_rect(ws.screen, Rect(20 + 30 * n, 40, 24, 140),
                             CORAL if n % 2 else WHITE),
                ws.draw_text(ws.screen, 20, 200 + n, "thinc", WHITE)))

    # Clients dial the *relay*; placement, routing and backhauls are
    # the fabric's business, not theirs.
    def dial() -> Connection:
        conn = Connection(loop, LAN_DESKTOP)
        coord.relay.accept(conn)
        return conn

    clients = []
    for seed in range(4):
        rc = ResilientClient(loop, dial, config=SMOKE_CONFIG, seed=seed)
        rc.start()
        clients.append(rc)

    # Let everyone attach and the script get rolling...
    loop.run_until(0.5)
    token = clients[0].token
    source = coord.route_token(token)

    # ...then move the first session to the other shard, live.  The
    # relay severs its splice, the frozen state crosses the fabric in a
    # SESSION_TRANSFER frame, and the client's ordinary reconnect logic
    # lands it on the new shard and replays what it missed.
    coord.migrate(token, 1 - source)
    loop.run_until(8.0)

    print(f"sessions per shard : "
          f"{[len(s.sessions) for s in coord.shards]}")
    print(f"migrated token     : {token} "
          f"(shard {source} -> {1 - source})")
    print(f"fabric control log : "
          f"{[type(m).__name__ for m in coord.fabric_log]}")
    print(f"shared-cache       : {coord.shared_cache.stats()}")
    for i, rc in enumerate(clients):
        shard = coord.route_token(rc.token)
        exact = rc.client.fb.same_as(screens[shard].screen.fb)
        print(f"client {i} (token {rc.token}) on shard {shard}: "
              f"pixel-exact={exact}")
        assert exact, "client diverged from its shard's screen"
    print("every client is pixel-identical to its shard's screen")


if __name__ == "__main__":
    main()
