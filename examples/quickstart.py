#!/usr/bin/env python
"""Quickstart: a THINC session in ~40 lines.

Builds the full stack — window server, THINC virtual display driver,
simulated network, thin client — draws a small desktop scene the way an
application would, and verifies that the client's framebuffer ends up
pixel-identical to the server's screen while reporting what actually
crossed the wire.

Run:  python examples/quickstart.py
"""

from repro.core import THINCClient, THINCServer
from repro.display import WindowServer, solid_pixels
from repro.net import Connection, EventLoop, LAN_DESKTOP, PacketMonitor
from repro.region import Rect

WHITE = (255, 255, 255, 255)
NAVY = (24, 40, 96, 255)
BLACK = (10, 10, 10, 255)


def main() -> None:
    # The testbed: one simulated clock drives everything.
    loop = EventLoop()
    monitor = PacketMonitor()
    connection = Connection(loop, LAN_DESKTOP, monitor=monitor)

    # Server side: THINC's virtual display driver plugs into the window
    # server exactly where a hardware driver would.
    server = THINCServer(loop, width=640, height=480)
    ws = WindowServer(640, 480, driver=server.driver, clock=loop.clock)
    server.attach_client(connection)

    # Client side: a thin device that executes protocol commands.
    client = THINCClient(loop, connection)

    # An application draws a little desktop, double-buffering its window
    # content in an offscreen pixmap like real toolkits do.
    ws.fill_rect(ws.screen, ws.screen.bounds, NAVY)  # desktop background
    window = ws.create_pixmap(400, 300)
    ws.fill_rect(window, window.bounds, WHITE)
    ws.fill_rect(window, Rect(0, 0, 400, 24), (200, 200, 220, 255))
    ws.draw_text(window, 8, 8, "THINC quickstart", BLACK)
    ws.draw_text(window, 12, 48, "hello, thin client world", BLACK)
    ws.put_image(window, Rect(12, 80, 64, 64),
                 solid_pixels(64, 64, (255, 160, 0, 255)))
    ws.copy_area(window, ws.screen, window.bounds, 120, 90)  # map it
    ws.free_pixmap(window)

    # Let the simulated network drain.
    loop.run_until_idle(max_time=5.0)

    print(f"pixel-exact at the client : "
          f"{client.fb.same_as(ws.screen.fb)}")
    print(f"commands executed         : {client.stats['commands_by_kind']}")
    print(f"bytes on the wire         : {monitor.total_bytes()}")
    print(f"(raw framebuffer would be : {640 * 480 * 4} bytes)")


if __name__ == "__main__":
    main()
