"""Figure 6 — A/V benchmark: total data transferred.

Paper's shape: the local PC streams the compressed file (<6 MB, about
1.2 Mbps); THINC's perfect playback costs ~117 MB (~24 Mbps) on desktop
networks; systems sending less than THINC do so only because they drop
video; server-side resizing cuts THINC's PDA bandwidth to ~3.5 Mbps.
"""

from conftest import AV_FRAMES

from repro.baselines import LocalPCModel
from repro.bench.experiments import av_figures
from repro.net import LAN_DESKTOP
from repro.video.stream import BENCHMARK_CLIP


def test_fig6_av_data(benchmark, show):
    figures = benchmark.pedantic(av_figures, kwargs={"max_frames": AV_FRAMES},
                                 rounds=1, iterations=1)
    show(figures.data_table())

    def run(name, network):
        return figures.runs[(name, network)]

    lan, wan, pda = "LAN Desktop", "WAN Desktop", "802.11g PDA"
    clip = BENCHMARK_CLIP()

    # Local PC: under 6 MB for the whole clip.
    quality, nbytes = LocalPCModel().video_metrics(clip.duration,
                                                   LAN_DESKTOP)
    assert quality == 1.0
    assert nbytes < 6e6

    # THINC: ~117 MB full clip, ~24 Mbps, on LAN and WAN alike.
    for network in (lan, wan):
        thinc = run("THINC", network)
        assert 90e6 < thinc.total_bytes_full_clip < 140e6, network
        assert 20 < thinc.bandwidth_mbps < 30, network

    # Anything below THINC's volume is dropping frames.
    for name in ("X", "NX", "VNC", "SunRay", "RDP", "ICA", "GoToMyPC"):
        r = run(name, lan)
        if r.total_bytes_full_clip < run("THINC", lan).total_bytes_full_clip:
            dropped_or_stretched = (
                r.frames_received < r.frames_sent
                or r.actual_duration > 1.5 * r.ideal_duration)
            assert dropped_or_stretched, name

    # GoToMyPC sends the least data — and has the worst quality.
    g = run("GoToMyPC", wan)
    assert g.total_bytes_full_clip == min(
        run(p, wan).total_bytes_full_clip
        for p in ("THINC", "X", "NX", "VNC", "SunRay", "RDP", "ICA",
                  "GoToMyPC"))

    # Server-side resize: THINC PDA bandwidth ~3.5 Mbps, far below the
    # other PDA systems, at full quality.
    thinc_pda = run("THINC", pda)
    assert thinc_pda.bandwidth_mbps < 6
    assert thinc_pda.av_quality > 0.99
    assert thinc_pda.bandwidth_mbps < run("RDP", pda).bandwidth_mbps
