"""Scrolling cost: the COPY command's raison d'être (Table 1).

A terminal scrolls one line per output line.  THINC ships each scroll
as a 13-byte COPY plus the new line's merged BITMAP; a screen scraper
re-reads and re-encodes the entire damaged text region.  This bench
measures the per-line wire cost of a 120-line build log on both
architectures.
"""

from repro.bench.platforms import make_platform
from repro.bench.reporting import format_mbytes, format_table
from repro.net import EventLoop, LAN_DESKTOP, PacketMonitor
from repro.region import Rect
from repro.workloads.terminal import TerminalApp

LINES = 120
INTERVAL = 0.02  # a busy build log


def run_terminal(platform_name: str):
    loop = EventLoop()
    monitor = PacketMonitor()
    platform = make_platform(platform_name, loop, LAN_DESKTOP,
                             monitor=monitor, width=640, height=480)
    terminal = TerminalApp(platform.window_server, loop,
                           Rect(40, 40, 560, 400))
    lines = [f"[{i:03d}/120] compiling module_{i:03d}.c ... ok"
             for i in range(LINES)]
    terminal.run_output(lines, INTERVAL)
    loop.run_until_idle(max_time=120)
    return monitor.total_bytes("server->client")


def run_scrolling():
    return {name: run_terminal(name) for name in ("THINC", "VNC", "SunRay")}


def test_scrolling(benchmark, show):
    totals = benchmark.pedantic(run_scrolling, rounds=1, iterations=1)
    show(format_table(
        "Scrolling terminal: wire cost of a 120-line build log (LAN)",
        ["platform", "total bytes", "bytes/line"],
        [[name, format_mbytes(total), f"{total // LINES:,}"]
         for name, total in sorted(totals.items(),
                                   key=lambda kv: kv[1])]))
    # THINC's COPY-based scrolling beats pixel scraping by a wide
    # margin on this workload.
    assert totals["THINC"] * 5 < totals["VNC"]
    assert totals["THINC"] * 5 < totals["SunRay"]
    # And the absolute cost is tiny: way below one full text region.
    region_bytes = 560 * 400 * 4
    assert totals["THINC"] < region_bytes
