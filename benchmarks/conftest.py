"""Shared configuration for the figure-regeneration benchmarks.

Each benchmark runs its experiment once (``benchmark.pedantic`` with a
single round — these are minutes-long system simulations, not
microbenchmarks), prints the regenerated table, and asserts the
qualitative shape the paper reports.

Workload sizes are reduced from the paper's (54 pages -> 8, 834 video
frames -> 120) to keep the suite in CI-friendly time; the quantities
measured are steady-state, and EXPERIMENTS.md records a full-size run.
"""

import pytest

# Make the experiment result caches (repro.bench.experiments) effective
# across the benchmark session: figures 2/3 and 5/6 share their runs.

WEB_PAGES = 8
AV_FRAMES = 120
REMOTE_PAGES = 4
REMOTE_FRAMES = 96


@pytest.fixture
def show():
    """Print a regenerated table so it lands in the benchmark output."""

    def _show(table: str) -> None:
        print()
        print(table)

    return _show
