"""Figure 2 — Web benchmark: average page latency per platform.

Paper's shape: THINC is fastest in every configuration (up to ~1.7x in
LAN, more in WAN); X suffers the largest LAN->WAN slowdown (~2.5x) from
its synchronous client/server coupling; GoToMyPC takes seconds per page
despite sending the least data; THINC beats the local PC because the
server renders pages faster than the slow client.
"""

from conftest import WEB_PAGES

from repro.baselines import LocalPCModel
from repro.bench.experiments import web_figures
from repro.net import LAN_DESKTOP
from repro.workloads.web import make_page_set


def test_fig2_web_latency(benchmark, show):
    figures = benchmark.pedantic(web_figures, kwargs={"page_count": WEB_PAGES},
                                 rounds=1, iterations=1)
    show(figures.latency_table())

    def latency(name, network):
        return figures.runs[(name, network)].mean_latency

    for network in ("LAN Desktop", "WAN Desktop"):
        thinc = latency("THINC", network)
        for other in ("X", "NX", "VNC", "SunRay", "RDP", "ICA", "GoToMyPC"):
            assert thinc < latency(other, network), \
                f"THINC must be fastest on {network} (vs {other})"

    # X degrades by far the most going LAN -> WAN (paper: ~2.5x).
    x_slowdown = latency("X", "WAN Desktop") / latency("X", "LAN Desktop")
    thinc_slowdown = (latency("THINC", "WAN Desktop")
                      / latency("THINC", "LAN Desktop"))
    assert x_slowdown > 2.0
    assert thinc_slowdown < x_slowdown

    # GoToMyPC's heavy compression costs seconds per page.
    assert latency("GoToMyPC", "WAN Desktop") > 1.0

    # THINC outperforms the local PC (paper: by more than 60%).
    model = LocalPCModel()
    pages = make_page_set(count=WEB_PAGES)
    local = sum(model.page_metrics(p.content_bytes, p.render_pixels,
                                   LAN_DESKTOP)[0] for p in pages) / len(pages)
    assert latency("THINC", "LAN Desktop") < local

    # PDA: THINC fastest among small-screen-capable systems.
    for other in ("VNC", "RDP", "ICA", "GoToMyPC"):
        assert latency("THINC", "802.11g PDA") < latency(other, "802.11g PDA")
