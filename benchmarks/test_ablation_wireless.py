"""Ablation — wireless packet loss on the PDA video path.

The paper's 802.11g configuration deliberately omits the loss and
latency quirks of real wireless networks (Section 8.1) to keep the
small-screen comparison clean, and separately reports that THINC still
plays perfect video over 802.11b.  This ablation tests both claims on
an 802.11b-class link (~5.5 Mbps effective, realistic ~20 ms wireless
RTT): the server-resized ~3.8 Mbps stream fits cleanly when the link is
clean, survives light loss on its headroom, and degrades once
retransmission head-of-line blocking eats the remaining margin.
"""

from repro.bench.reporting import format_pct, format_table
from repro.bench.testbed import run_av_benchmark
from repro.net import LinkParams, PDA_80211G

FRAMES = 96
LOSS_RATES = [0.0, 0.01, 0.03, 0.08]
# 802.11b with realistic MAC-layer latency.
WIFI_B = LinkParams("802.11b", bandwidth_bps=5.5e6, rtt=0.020)


def run_wireless_ablation():
    results = {"11g": run_av_benchmark(
        "THINC", PDA_80211G, "802.11g ideal", max_frames=FRAMES,
        viewport=(320, 240))}
    for loss in LOSS_RATES:
        link = WIFI_B.with_loss(loss) if loss else WIFI_B
        results[loss] = run_av_benchmark(
            "THINC", link, f"802.11b loss={loss:g}", max_frames=FRAMES,
            viewport=(320, 240))
    return results


def test_ablation_wireless(benchmark, show):
    results = benchmark.pedantic(run_wireless_ablation, rounds=1,
                                 iterations=1)
    rows = [["802.11g ideal (paper)", format_pct(results["11g"].av_quality),
             f"{results['11g'].bandwidth_mbps:.1f}"]]
    rows += [[f"802.11b, {loss * 100:g}% loss",
              format_pct(results[loss].av_quality),
              f"{results[loss].bandwidth_mbps:.1f}"]
             for loss in LOSS_RATES]
    show(format_table(
        "Ablation — Wireless Loss vs THINC PDA Video Quality",
        ["link", "A/V quality", "Mbps"], rows))

    # The paper's configurations: ideal 802.11g and clean 802.11b both
    # play perfectly thanks to server-side resizing.
    assert results["11g"].av_quality > 0.99
    assert results[0.0].av_quality > 0.99
    # Light loss is absorbed by the remaining headroom...
    assert results[0.01].av_quality > 0.9
    # ...heavy loss (head-of-line blocking) degrades quality.
    assert results[0.08].av_quality < 0.9
    qualities = [results[l].av_quality for l in LOSS_RATES]
    assert qualities == sorted(qualities, reverse=True)
