"""Ablation — RAW payload compression (paper Section 7).

RAW is the only THINC command that is compressed (PNG-model) before
transmission.  Disabling it shows how much of the web workload's data
volume the last-resort pixel path accounts for — and that commands
other than RAW are unaffected, since they carry semantics, not pixels.
"""

from conftest import WEB_PAGES

from repro.bench.reporting import format_mbytes, format_ms, format_table
from repro.bench.testbed import run_web_benchmark
from repro.net import LAN_DESKTOP, LinkParams

# Also measure on a modest link where the extra bytes cost latency.
DSL = LinkParams("dsl", bandwidth_bps=8e6, rtt=0.030)


def run_compression_ablation():
    rows = {}
    for label, link in [("LAN", LAN_DESKTOP), ("8 Mbps", DSL)]:
        rows[(label, True)] = run_web_benchmark(
            "THINC", link, label, page_count=WEB_PAGES)
        rows[(label, False)] = run_web_benchmark(
            "THINC", link, label, page_count=WEB_PAGES, compress_raw=False)
    return rows


def test_ablation_compression(benchmark, show):
    rows = benchmark.pedantic(run_compression_ablation, rounds=1,
                              iterations=1)
    show(format_table(
        "Ablation — RAW Compression On/Off (web workload)",
        ["network", "compression", "data/page", "latency"],
        [[label, "on" if on else "off",
          format_mbytes(r.mean_page_bytes), format_ms(r.mean_latency)]
         for (label, on), r in sorted(rows.items(),
                                      key=lambda kv: (kv[0][0], not kv[0][1]))]))

    for label in ("LAN", "8 Mbps"):
        on = rows[(label, True)]
        off = rows[(label, False)]
        # PNG-model compression saves a large share of the page data.
        assert on.mean_page_bytes < 0.7 * off.mean_page_bytes, label
    # On the constrained link the savings buy latency too.
    assert rows[("8 Mbps", True)].mean_latency < \
        rows[("8 Mbps", False)].mean_latency
