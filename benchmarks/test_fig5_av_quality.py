"""Figure 5 — A/V benchmark: A/V quality per platform.

Paper's shape: THINC is the only thin client at 100% quality in every
configuration (including the PDA); NX is the worst on the LAN (~12%);
GoToMyPC is the worst on the WAN (<2%); VNC's client-pull halves its
quality from LAN to WAN; ICA's client-side resize collapses its PDA
quality to ~6%.
"""

from conftest import AV_FRAMES

from repro.bench.experiments import av_figures


def test_fig5_av_quality(benchmark, show):
    figures = benchmark.pedantic(av_figures, kwargs={"max_frames": AV_FRAMES},
                                 rounds=1, iterations=1)
    show(figures.quality_table())

    def quality(name, network):
        return figures.runs[(name, network)].av_quality

    lan, wan, pda = "LAN Desktop", "WAN Desktop", "802.11g PDA"

    # THINC: 100% everywhere, the only such thin client.
    for network in (lan, wan, pda):
        assert quality("THINC", network) > 0.99, network
    for other in ("X", "NX", "VNC", "SunRay", "RDP", "ICA", "GoToMyPC"):
        assert quality(other, lan) < 0.6, other
        assert quality(other, wan) < 0.6, other

    # NX worst on the LAN (paper: 12%).
    nx = quality("NX", lan)
    assert nx < 0.2
    assert nx == min(quality(p, lan) for p in
                     ("X", "NX", "VNC", "SunRay", "RDP", "ICA"))

    # GoToMyPC worst on the WAN (paper: <2%).
    assert quality("GoToMyPC", wan) < 0.05
    assert quality("GoToMyPC", wan) == min(
        quality(p, wan) for p in
        ("X", "NX", "VNC", "SunRay", "RDP", "ICA", "GoToMyPC"))

    # Client-pull halves VNC from LAN to WAN.
    assert quality("VNC", wan) < 0.65 * quality("VNC", lan)

    # ICA's client-side resize collapses its PDA quality (paper: ~6%).
    assert quality("ICA", pda) < 0.10
    assert quality("ICA", pda) < 0.5 * quality("ICA", lan)

    # THINC's quality is up to 8x better in the LAN and far more in the
    # WAN (paper: up to 140x).
    assert quality("THINC", lan) / nx > 6
    assert quality("THINC", wan) / quality("GoToMyPC", wan) > 20

    # "Consistently smooth and synchronized": server-side timestamps
    # keep THINC's audio/video delivery skew well under the lip-sync
    # perception threshold, LAN and WAN alike.
    for network in (lan, wan):
        skew = figures.runs[("THINC", network)].av_sync_skew_s
        assert skew is not None and skew < 0.05, network
