"""Microbenchmarks of the hot core data structures.

Unlike the figure benchmarks (single-shot system simulations), these
use pytest-benchmark conventionally: many rounds over the operations
the THINC server performs per update — translation bookkeeping must be
cheap or the virtual-driver premise collapses.
"""

import numpy as np

from repro.core import ClientBuffer, CommandQueue
from repro.core.resize import DisplayScaler, resample
from repro.core.scheduler import SRSFScheduler
from repro.protocol import compression
from repro.protocol.commands import (BitmapCommand, RawCommand,
                                     SFillCommand, decode_command)
from repro.region import Rect, Region

RED = (255, 0, 0, 255)
RNG = np.random.default_rng(42)
PHOTO = RNG.integers(0, 256, (64, 64, 4), dtype=np.uint8)


def test_micro_command_queue_add_evict(benchmark):
    """Adding 50 mutually overwriting commands (eviction churn)."""

    def run():
        queue = CommandQueue()
        for i in range(50):
            queue.add(SFillCommand(Rect((i * 7) % 80, (i * 11) % 60,
                                        24, 18), RED))
        return len(queue)

    result = benchmark(run)
    assert result <= 50


def test_micro_glyph_merge(benchmark):
    """A 40-glyph text line merging into one BITMAP."""
    mask = np.ones((7, 5), dtype=bool)

    def run():
        queue = CommandQueue()
        for i in range(40):
            queue.add(BitmapCommand(Rect(i * 6, 0, 5, 7), mask, RED, None))
        return len(queue)

    assert benchmark(run) == 1


def test_micro_srsf_order(benchmark):
    """Ordering a 200-command buffer (every flush period pays this)."""
    scheduler = SRSFScheduler()
    commands = []
    for i in range(200):
        cmd = SFillCommand(Rect((i * 13) % 900, (i * 7) % 600, 10, 10), RED)
        cmd.seq = i
        commands.append(cmd)

    result = benchmark(scheduler.order, commands)
    assert len(result) == 200


def test_micro_raw_encode(benchmark):
    """PNG-model compression of a 64x64 photo block."""

    def run():
        cmd = RawCommand(Rect(0, 0, 64, 64), PHOTO)
        return cmd.wire_size()

    assert benchmark(run) > 0


def test_micro_raw_decode(benchmark):
    """Client-side decode of the same block."""
    wire_bytes = RawCommand(Rect(0, 0, 64, 64), PHOTO).encode()

    result = benchmark(decode_command, wire_bytes)
    assert result.dest.area == 64 * 64


def test_micro_rle_size(benchmark):
    """Vectorised RLE sizing (the scraper baselines' hot path)."""
    result = benchmark(compression.rle_size, PHOTO)
    assert result > 0


def test_micro_region_union(benchmark):
    """Region algebra under damage-style rect streams."""

    def run():
        region = Region()
        for i in range(60):
            region.add(Rect((i * 37) % 500, (i * 53) % 400, 60, 40))
        return region.area

    assert benchmark(run) > 0


def test_micro_resample(benchmark):
    """Fant-style resampling of a 256x192 block to PDA scale."""
    block = RNG.integers(0, 256, (192, 256, 4), dtype=np.uint8)

    result = benchmark(resample, block, 80, 60)
    assert result.shape == (60, 80, 4)


def test_micro_scale_command(benchmark):
    """Full per-command scaling policy for one RAW update."""
    scaler = DisplayScaler((1024, 768), (320, 240))
    cmd = RawCommand(Rect(0, 0, 64, 64), PHOTO, compress=False)

    result = benchmark(scaler.scale_command, cmd)
    assert len(result) == 1


def test_micro_prepare_plane_fanout(benchmark):
    """Fanning one prepared RAW update out to 8 same-viewport sessions.

    After the first miss everything is cache hits plus cheap clone
    handoffs, so the per-session cost must stay far below the
    scale/compress work the plane amortises.
    """
    from repro.core import THINCServer
    from repro.net import Connection, EventLoop, LAN_DESKTOP

    loop = EventLoop()
    server = THINCServer(loop, 1024, 768)
    for _ in range(8):
        server.attach_client(Connection(loop, LAN_DESKTOP))
    loop.run_until_idle()

    def run():
        cmd = RawCommand(Rect(0, 0, 64, 64), PHOTO)
        server.plane.submit(cmd, server.sessions)
        loop.run_until_idle()
        return server.plane.stats.cache_hits

    assert benchmark(run) > 0


def test_micro_buffer_flush(benchmark):
    """Buffer + flush cycle for a burst of small updates."""

    class NullWriter:
        def writable_bytes(self):
            return 1 << 20

        def write(self, data):
            pass

    def run():
        buf = ClientBuffer()
        for i in range(40):
            buf.add(SFillCommand(Rect((i * 31) % 600, (i * 17) % 400,
                                      12, 12), RED))
        buf.flush(NullWriter())
        return buf.pending_commands()

    assert benchmark(run) == 0
