"""Figure 7 — THINC A/V quality from the Table 2 remote sites.

Paper's shape: perfect A/V quality at every remote site except Korea,
whose PlanetLab node was stuck with a 256 KB TCP window — the window
over its RTT yields less throughput than the ~24 Mbps the stream needs.
Distant sites that allowed large windows (Puerto Rico, Ireland,
Finland) play at 100%.
"""

from conftest import REMOTE_FRAMES

from repro.bench.reporting import format_pct, format_table
from repro.bench.sites import REMOTE_SITES, site_link
from repro.bench.testbed import run_av_benchmark
from repro.net import LAN_DESKTOP


def run_remote_av():
    results = {"LAN": run_av_benchmark("THINC", LAN_DESKTOP, "LAN",
                                       max_frames=REMOTE_FRAMES)}
    for site in REMOTE_SITES:
        results[site.code] = run_av_benchmark(
            "THINC", site_link(site), site.code, max_frames=REMOTE_FRAMES)
    return results


def test_fig7_av_remote(benchmark, show):
    results = benchmark.pedantic(run_remote_av, rounds=1, iterations=1)
    rows = [["(testbed LAN)", format_pct(results["LAN"].av_quality), "100%"]]
    for site in REMOTE_SITES:
        link = site_link(site)
        rows.append([
            f"{site.code} {site.location}",
            format_pct(results[site.code].av_quality),
            format_pct(min(link.throughput / LAN_DESKTOP.throughput, 1.0)),
        ])
    show(format_table(
        "Figure 7 — THINC A/V Quality Using Remote Sites",
        ["site", "A/V quality", "relative bandwidth"], rows))

    # Perfect quality everywhere but Korea.
    for site in REMOTE_SITES:
        quality = results[site.code].av_quality
        if site.code == "KR":
            assert quality < 0.7, "Korea must be window-limited"
        else:
            assert quality > 0.95, site.code

    # The Korea limit is the TCP window, not the link: the same site
    # with a 1 MB window plays perfectly.
    kr = next(s for s in REMOTE_SITES if s.code == "KR")
    wide = site_link(kr)
    wide = type(wide)(wide.name, wide.bandwidth_bps, wide.rtt,
                     tcp_window=1 << 20)
    fixed = run_av_benchmark("THINC", wide, "KR-wide",
                             max_frames=REMOTE_FRAMES)
    assert fixed.av_quality > 0.95
