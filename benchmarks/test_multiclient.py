"""Screen-sharing scalability: one session, N clients.

The paper's introduction sells display multiplexing — "groups of users
distributed over large geographical locations can seamlessly
collaborate using a single shared computing session."  This bench
measures what sharing costs: with N attached clients the server
translates once and — thanks to the shared prepare plane — scales and
compresses once per distinct viewport, so total bytes grow linearly
(each client has its own pipe) while server CPU stays essentially flat
and per-client delivery latency stays flat too.
"""

import pytest

from repro.bench.analysis import pipeline_report
from repro.bench.reporting import format_mbytes, format_ms, format_table
from repro.core import THINCClient, THINCServer
from repro.display import WindowServer
from repro.net import Connection, EventLoop, LAN_DESKTOP, PacketMonitor
from repro.workloads.web import WebBrowserApp, make_page_set

PAGES = 4
CLIENT_COUNTS = [1, 2, 4, 8]


def run_shared_session(n_clients: int):
    loop = EventLoop()
    monitor = PacketMonitor()
    server = THINCServer(loop, 1024, 768)
    ws = WindowServer(1024, 768, driver=server.driver, clock=loop.clock)
    clients = []
    for _ in range(n_clients):
        conn = Connection(loop, LAN_DESKTOP, monitor=monitor)
        server.attach_client(conn)
        clients.append(THINCClient(loop, conn, headless=True))
    browser = WebBrowserApp(ws, make_page_set(count=PAGES))
    finish_times = []
    for index in range(PAGES):
        start = loop.now
        browser.render_page(index)
        loop.run_until_idle(max_time=start + 30)
        finish_times.append(loop.now - start)
    total = monitor.total_bytes("server->client")
    mean_latency = sum(finish_times) / len(finish_times)
    return {
        "total_bytes": total,
        "latency": mean_latency,
        "server": dict(server.stats),
        "pipeline": server.pipeline_stats(),
    }


def run_scalability():
    return {n: run_shared_session(n) for n in CLIENT_COUNTS}


def test_multiclient_scalability(benchmark, show):
    results = benchmark.pedantic(run_scalability, rounds=1, iterations=1)
    show(format_table(
        "Screen sharing: one session, N clients (4 pages, LAN)",
        ["clients", "total bytes", "per-client bytes", "page time",
         "server CPU", "prepare hits/lookups"],
        [[n, format_mbytes(r["total_bytes"]),
          format_mbytes(r["total_bytes"] / n),
          format_ms(r["latency"]),
          format_ms(r["server"]["cpu_time"]),
          f"{r['server']['prepare_cache_hits']}/"
          f"{r['server']['prepare_cache_hits'] + r['server']['prepare_cache_misses']}"]
         for n, r in sorted(results.items())]))
    show(format_table(
        "Pipeline stages at N=8",
        ["stage", "in", "out", "bytes", "cpu", "cache"],
        pipeline_report(results[8]["pipeline"])))

    one = results[1]
    for n in CLIENT_COUNTS[1:]:
        r = results[n]
        # Bytes scale linearly (each client gets the full stream)...
        assert r["total_bytes"] == pytest.approx(
            n * one["total_bytes"], rel=0.05), n
        # ...while delivery time stays essentially flat: translation is
        # shared, per-client work is buffered sends on separate pipes.
        assert r["latency"] < one["latency"] * 2.0, n

    # The shared prepare plane does the scale/compress work once per
    # distinct viewport: with 8 same-viewport clients the server's CPU
    # pipeline must stay under 2x the single-client cost (vs ~8x when
    # every session prepared independently)...
    eight = results[8]
    assert eight["server"]["cpu_time"] < 2.0 * one["server"]["cpu_time"]
    # ...because all but the first lookup per command hit the cache: the
    # misses match the single-client run and the other 7/8 of lookups
    # are hits.
    assert eight["server"]["prepare_cache_misses"] == \
        one["server"]["prepare_cache_misses"]
    assert eight["server"]["prepare_cache_hits"] == \
        7 * eight["server"]["prepare_cache_misses"]
