"""Screen-sharing scalability: one session, N clients.

The paper's introduction sells display multiplexing — "groups of users
distributed over large geographical locations can seamlessly
collaborate using a single shared computing session."  This bench
measures what sharing costs: with N attached clients the server
translates once but buffers/sends per client, so total bytes grow
linearly while per-client delivery latency stays flat (each client has
its own connection; the shared work is the cheap translation).
"""

from repro.bench.reporting import format_mbytes, format_ms, format_table
from repro.core import THINCClient, THINCServer
from repro.display import WindowServer
from repro.net import Connection, EventLoop, LAN_DESKTOP, PacketMonitor
from repro.workloads.web import WebBrowserApp, make_page_set

PAGES = 4
CLIENT_COUNTS = [1, 2, 4, 8]


def run_shared_session(n_clients: int):
    loop = EventLoop()
    monitor = PacketMonitor()
    server = THINCServer(loop, 1024, 768)
    ws = WindowServer(1024, 768, driver=server.driver, clock=loop.clock)
    clients = []
    for _ in range(n_clients):
        conn = Connection(loop, LAN_DESKTOP, monitor=monitor)
        server.attach_client(conn)
        clients.append(THINCClient(loop, conn, headless=True))
    browser = WebBrowserApp(ws, make_page_set(count=PAGES))
    finish_times = []
    for index in range(PAGES):
        start = loop.now
        browser.render_page(index)
        loop.run_until_idle(max_time=start + 30)
        finish_times.append(loop.now - start)
    total = monitor.total_bytes("server->client")
    mean_latency = sum(finish_times) / len(finish_times)
    return total, mean_latency


def run_scalability():
    return {n: run_shared_session(n) for n in CLIENT_COUNTS}


def test_multiclient_scalability(benchmark, show):
    results = benchmark.pedantic(run_scalability, rounds=1, iterations=1)
    show(format_table(
        "Screen sharing: one session, N clients (4 pages, LAN)",
        ["clients", "total bytes", "per-client bytes", "page time"],
        [[n, format_mbytes(total), format_mbytes(total / n),
          format_ms(latency)]
         for n, (total, latency) in sorted(results.items())]))

    one_total, one_latency = results[1]
    for n in CLIENT_COUNTS[1:]:
        total, latency = results[n]
        # Bytes scale linearly (each client gets the full stream)...
        assert total == pytest_approx(n * one_total, rel=0.05), n
        # ...while delivery time stays essentially flat: translation is
        # shared, per-client work is buffered sends on separate pipes.
        assert latency < one_latency * 2.0, n


def pytest_approx(value, rel):
    import pytest

    return pytest.approx(value, rel=rel)
