"""Figure 3 — Web benchmark: average per-page data transferred.

Paper's shape: the local PC is the most bandwidth-efficient platform;
among thin clients THINC sends less than everything except NX in the
LAN; GoToMyPC sends the least of the thin clients (8-bit colour plus
expensive compression); VNC's pixel scraping costs roughly twice
THINC's data; adaptive systems (VNC, Sun Ray, NX) shrink significantly
from LAN to WAN; server-side resizing cuts THINC's PDA data by more
than 2x while client-resize systems save nothing.
"""

from conftest import WEB_PAGES

from repro.bench.experiments import web_figures
from repro.workloads.web import make_page_set


def test_fig3_web_data(benchmark, show):
    figures = benchmark.pedantic(web_figures, kwargs={"page_count": WEB_PAGES},
                                 rounds=1, iterations=1)
    show(figures.data_table())

    def data(name, network):
        return figures.runs[(name, network)].mean_page_bytes

    lan = "LAN Desktop"
    wan = "WAN Desktop"
    pda = "802.11g PDA"

    # Local PC most efficient of all platforms.
    pages = make_page_set(count=WEB_PAGES)
    local = sum(p.content_bytes for p in pages) / len(pages)
    assert local < data("THINC", lan)

    # THINC beats every thin client except NX in the LAN.
    for other in ("X", "VNC", "SunRay", "RDP", "ICA"):
        assert data("THINC", lan) < data(other, lan), other
    assert data("NX", lan) < data("THINC", lan)

    # VNC sends substantially more than THINC in the LAN (paper: THINC
    # sends "almost half the data"; the exact ratio depends on the page
    # mix — ours lands around 1.6x).
    assert data("VNC", lan) > 1.4 * data("THINC", lan)

    # GoToMyPC sends the least among thin clients in the WAN.
    for other in ("THINC", "X", "NX", "VNC", "SunRay", "RDP", "ICA"):
        assert data("GoToMyPC", wan) < data(other, wan), other

    # Adaptive compression shrinks VNC and Sun Ray sharply LAN -> WAN.
    assert data("VNC", wan) < 0.6 * data("VNC", lan)
    assert data("SunRay", wan) < 0.6 * data("SunRay", lan)

    # Server-side resize: THINC PDA data drops by more than 2x vs its
    # desktop volume; client-resize/clip systems save nothing.
    assert data("THINC", pda) < data("THINC", lan) / 2
    assert data("ICA", pda) > 0.9 * data("ICA", lan)
    assert data("VNC", pda) > 0.35 * data("VNC", lan)

    # Among 24-bit PDA systems THINC transfers as little as a third.
    for other in ("VNC", "RDP", "ICA"):
        assert data("THINC", pda) < data(other, pda) / 2.5, other
