"""Ablation — offscreen drawing awareness (paper Section 4.1).

THINC with its offscreen tracking disabled behaves like systems that
ignore offscreen commands: when a double-buffered page flips onscreen,
all drawing semantics are gone and the flip ships as compressed raw
pixels.  The paper credits this optimisation for much of THINC's edge
over Sun Ray, whose protocol is similar but which must re-derive
commands from pixel data.
"""

from conftest import WEB_PAGES

from repro.bench.reporting import format_mbytes, format_ms, format_table
from repro.bench.testbed import run_web_benchmark
from repro.net import LAN_DESKTOP


def run_offscreen_ablation():
    on = run_web_benchmark("THINC", LAN_DESKTOP, "offscreen on",
                           page_count=WEB_PAGES)
    off = run_web_benchmark("THINC", LAN_DESKTOP, "offscreen off",
                            page_count=WEB_PAGES, offscreen_awareness=False)
    return on, off


def test_ablation_offscreen(benchmark, show):
    on, off = benchmark.pedantic(run_offscreen_ablation, rounds=1,
                                 iterations=1)
    show(format_table(
        "Ablation — Offscreen Drawing Awareness (web workload, LAN)",
        ["variant", "latency", "data/page"],
        [
            ["offscreen awareness ON", format_ms(on.mean_latency),
             format_mbytes(on.mean_page_bytes)],
            ["offscreen awareness OFF", format_ms(off.mean_latency),
             format_mbytes(off.mean_page_bytes)],
        ]))
    # Awareness preserves semantics.  The data saving is modest when a
    # strong RAW compressor backstops the pixel path (text compresses
    # well either way), but the *processing* saving is dramatic: without
    # awareness every page flip is a full-screen compression job — the
    # "computationally expensive ... additional load on the server" of
    # Section 4.1 — which multiplies page latency.
    assert on.mean_page_bytes < off.mean_page_bytes
    assert on.mean_latency < 0.5 * off.mean_latency
