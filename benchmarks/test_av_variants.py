"""A/V benchmark variants (Section 8.3's side experiments).

The paper reports two sanity variants alongside Figure 5:

* video only (no audio): "results were similar to the A/V playback
  results", and
* audio only (no video): "most of the platforms with audio support
  provided perfect audio playback quality in the absence of video" —
  the degradation in the combined benchmark comes from video swamping
  the channel, not from audio being hard.
"""

from repro.audio.sync import audio_quality
from repro.bench.platforms import make_platform
from repro.bench.reporting import format_pct, format_table
from repro.bench.testbed import run_av_benchmark
from repro.net import EventLoop, LAN_DESKTOP, PacketMonitor
from repro.video.stream import SyntheticVideoClip
from repro.workloads.video import AVPlayerApp

FRAMES = 96
AUDIO_PLATFORMS = ["THINC", "X", "NX", "SunRay", "RDP", "ICA"]


def run_audio_only(name: str) -> float:
    """Play the clip's audio track alone; return audio quality."""
    loop = EventLoop()
    platform = make_platform(name, loop, LAN_DESKTOP,
                             monitor=PacketMonitor())
    clip = SyntheticVideoClip(width=32, height=24, fps=24,
                              duration=FRAMES / 24)
    player = AVPlayerApp(platform.window_server, loop, clip,
                         audio_sink=platform, max_frames=FRAMES)
    # Suppress the video path: frames are never presented, only audio.
    player._put_frame = _audio_only_put(player)
    player.start()
    loop.run_until_idle(max_time=120)
    return audio_quality(platform.audio_arrivals(),
                         player.audio.chunks_emitted or 1,
                         player.ideal_duration)


def _audio_only_put(player):
    def put(index):
        if index >= player.max_frames:
            player.audio.drain()
            player.ws.video_destroy_stream(player.stream)
            player.finished_at = player.loop.now
            return
        player.audio.play(player._audio_block)
        player.frames_put += 1
        player.loop.schedule(player.clip.frame_interval,
                             lambda: put(index + 1))

    return put


def run_variants():
    audio_only = {name: run_audio_only(name) for name in AUDIO_PLATFORMS}
    video_combined = {
        name: run_av_benchmark(name, LAN_DESKTOP, "lan",
                               max_frames=FRAMES).av_quality
        for name in ("THINC", "NX")}
    return audio_only, video_combined


def test_av_variants(benchmark, show):
    audio_only, combined = benchmark.pedantic(run_variants, rounds=1,
                                              iterations=1)
    show(format_table(
        "A/V variants — audio alone vs combined playback (LAN)",
        ["platform", "audio-only quality"],
        [[name, format_pct(q)] for name, q in sorted(audio_only.items())]))

    # Audio alone is easy: every audio platform plays it (nearly)
    # perfectly, including the ones that collapse under video.
    for name, quality in audio_only.items():
        assert quality > 0.95, name

    # The combined benchmark's degradation therefore comes from video:
    # NX at ~12% combined still had perfect audio-alone quality.
    assert combined["NX"] < 0.3
    assert audio_only["NX"] > 0.95
    assert combined["THINC"] > 0.99
