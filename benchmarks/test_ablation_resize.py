"""Ablation — server-side vs client-side display resizing (Section 6).

THINC resizes every update on the server before transmission; ICA-style
systems send full-resolution data and make the weak client scale it.
Comparing THINC-with-viewport against THINC-without (full-size data
plus modelled client scaling) isolates the bandwidth and latency cost.
"""

from conftest import WEB_PAGES

from repro.bench.platforms import CLIENT_RESIZE_COST
from repro.bench.reporting import format_mbytes, format_ms, format_table
from repro.bench.testbed import run_av_benchmark, run_web_benchmark
from repro.net import PDA_80211G

VIEWPORT = (320, 240)


def run_resize_ablation():
    server_web = run_web_benchmark("THINC", PDA_80211G, "server-resize",
                                   page_count=WEB_PAGES, viewport=VIEWPORT)
    client_web = run_web_benchmark("THINC", PDA_80211G, "client-resize",
                                   page_count=WEB_PAGES, viewport=None)
    server_av = run_av_benchmark("THINC", PDA_80211G, "server-resize",
                                 max_frames=96, viewport=VIEWPORT)
    client_av = run_av_benchmark("THINC", PDA_80211G, "client-resize",
                                 max_frames=96, viewport=None)
    return server_web, client_web, server_av, client_av


def test_ablation_resize(benchmark, show):
    server_web, client_web, server_av, client_av = benchmark.pedantic(
        run_resize_ablation, rounds=1, iterations=1)

    # Client-side resizing adds per-pixel scaling work on the handheld.
    scaled_pixels = 1024 * 768  # every full-screen update is rescaled
    client_resize_latency = (client_web.mean_latency
                             + scaled_pixels * CLIENT_RESIZE_COST)

    show(format_table(
        "Ablation — Server-Side vs Client-Side Resize (802.11g PDA)",
        ["variant", "web data/page", "web latency (incl. client)",
         "A/V Mbps"],
        [
            ["server resize (THINC)",
             format_mbytes(server_web.mean_page_bytes),
             format_ms(server_web.mean_latency),
             f"{server_av.bandwidth_mbps:.1f}"],
            ["client resize",
             format_mbytes(client_web.mean_page_bytes),
             format_ms(client_resize_latency),
             f"{client_av.bandwidth_mbps:.1f}"],
        ]))

    # Paper: bandwidth cut by more than 2x with server-side resizing.
    assert server_web.mean_page_bytes < client_web.mean_page_bytes / 2
    assert server_av.bandwidth_mbps < client_av.bandwidth_mbps / 2
    # ... while only marginally affecting (here: improving) latency.
    assert server_web.mean_latency < client_resize_latency
