"""Figure 4 — THINC web latency from the Table 2 remote sites.

Paper's shape: page latency stays sub-second at every site; the Korea
site (the farthest, with a capped 256 KB TCP window) is the slowest;
latency grows far more slowly than RTT — Finland's RTT is two orders of
magnitude above the LAN's while its page latency is within ~2.5x.
"""

from conftest import REMOTE_PAGES

from repro.bench.sites import REMOTE_SITES, site_link
from repro.bench.testbed import run_web_benchmark
from repro.net import LAN_DESKTOP
from repro.bench.reporting import format_ms, format_table


def run_remote_web():
    results = {"LAN": run_web_benchmark("THINC", LAN_DESKTOP, "LAN",
                                        page_count=REMOTE_PAGES)}
    for site in REMOTE_SITES:
        results[site.code] = run_web_benchmark(
            "THINC", site_link(site), site.code, page_count=REMOTE_PAGES)
    return results


def test_fig4_web_remote(benchmark, show):
    results = benchmark.pedantic(run_remote_web, rounds=1, iterations=1)
    rows = [["(testbed LAN)", "0.2",
             format_ms(results["LAN"].mean_latency)]]
    for site in REMOTE_SITES:
        rows.append([f"{site.code} {site.location}",
                     f"{site.rtt * 1000:.0f}",
                     format_ms(results[site.code].mean_latency)])
    show(format_table(
        "Figure 4 — THINC Average Page Latency Using Remote Sites",
        ["site", "RTT (ms)", "latency"], rows))

    latencies = {code: r.mean_latency for code, r in results.items()}

    # Sub-second everywhere; Korea is the slowest site.
    for code, latency in latencies.items():
        assert latency < 1.0, code
    assert latencies["KR"] == max(v for k, v in latencies.items()
                                  if k != "LAN")

    # Latency grows two orders of magnitude more slowly than RTT:
    # Finland's RTT is >500x the LAN's, yet its pages pay only about
    # one extra round trip over the LAN number.
    fi = next(s for s in REMOTE_SITES if s.code == "FI")
    assert fi.rtt / LAN_DESKTOP.rtt > 100
    assert latencies["FI"] - latencies["LAN"] < 2 * fi.rtt
