"""Ablation — SRSF delivery scheduling vs FIFO (paper Section 5).

THINC orders buffered commands shortest-remaining-size-first (with a
real-time queue for updates near recent input).  Under a congested link
carrying bulk image traffic, a keystroke echo must not wait behind a
half-megabyte update; SRSF delivers it ahead, FIFO makes it queue.
"""

import statistics

from repro.bench.reporting import format_ms, format_table
from repro.bench.testbed import run_typing_benchmark
from repro.core.scheduler import FIFOScheduler
from repro.net import LinkParams

# A congested access link where bulk output backlogs.
DSL = LinkParams("dsl", bandwidth_bps=8e6, rtt=0.030, tcp_window=256 * 1024)


def run_scheduler_ablation():
    srsf = run_typing_benchmark(DSL, keys=15)
    fifo = run_typing_benchmark(DSL, scheduler_factory=FIFOScheduler,
                                keys=15)
    return srsf, fifo


def test_ablation_scheduler(benchmark, show):
    srsf, fifo = benchmark.pedantic(run_scheduler_ablation, rounds=1,
                                    iterations=1)
    assert len(srsf) >= 10 and len(fifo) >= 10

    def row(name, xs):
        return [name, format_ms(statistics.mean(xs)),
                format_ms(statistics.median(xs)), format_ms(max(xs))]

    show(format_table(
        "Ablation — SRSF vs FIFO Delivery (echo latency under load)",
        ["scheduler", "mean", "median", "max"],
        [row("SRSF multi-queue", srsf), row("FIFO", fifo)]))

    # SRSF improves mean (SRPT is optimal for mean response time) and
    # median echo latency under bulk load.
    assert statistics.mean(srsf) < statistics.mean(fifo)
    assert statistics.median(srsf) < statistics.median(fifo)
