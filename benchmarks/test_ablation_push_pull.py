"""Ablation — server-push vs client-pull delivery (paper Section 5).

The paper blames VNC's WAN video collapse on its client-pull model:
updates leave only after a request arrives, so the update rate is
bounded by the round-trip time while frames are generated much faster.
This ablation isolates the mechanism by running the *same* scraping
server and encoder in both modes over a high-latency path.
"""

from repro.audio.sync import playback_quality
from repro.baselines import ScrapeServer, BaselineClient
from repro.baselines.vnc import VncEncoder
from repro.bench.reporting import format_pct, format_table
from repro.display import WindowServer
from repro.net import Connection, EventLoop, LinkParams, PacketMonitor
from repro.region import Rect
from repro.video.stream import SyntheticVideoClip
from repro.workloads.video import AVPlayerApp

# Very high latency, ample bandwidth: pull is RTT-bound, push is not.
SATELLITE = LinkParams("satellite", bandwidth_bps=100e6, rtt=0.200)
FRAMES = 96


def run_one(pull: bool):
    loop = EventLoop()
    monitor = PacketMonitor()
    conn = Connection(loop, SATELLITE, monitor=monitor)
    ws = WindowServer(640, 480, clock=loop.clock)
    ScrapeServer(loop, conn, ws, encoder=VncEncoder(), pull=pull)
    client = BaselineClient(loop, conn, pull=pull)
    clip = SyntheticVideoClip(width=320, height=240, fps=24, duration=4.0)
    # Play at native size: the scraped update rate then fits the link
    # comfortably, so any quality gap is purely the delivery model.
    player = AVPlayerApp(ws, loop, clip, fullscreen=False,
                         dst_rect=Rect(0, 0, 320, 240),
                         max_frames=FRAMES)
    player.start()
    loop.run_until_idle(max_time=120)
    received = len(client.video_frames_seen)
    last = client.last_video_frame_time or player.ideal_duration
    actual = max(last - player.started_at, 0.01)
    return playback_quality(received, FRAMES, player.ideal_duration, actual)


def run_push_pull():
    return run_one(pull=False), run_one(pull=True)


def test_ablation_push_pull(benchmark, show):
    push, pull = benchmark.pedantic(run_push_pull, rounds=1, iterations=1)
    show(format_table(
        "Ablation — Server-Push vs Client-Pull (video over 200 ms RTT)",
        ["delivery model", "video quality"],
        [["server-push", format_pct(push)],
         ["client-pull", format_pct(pull)]]))
    # Pull is bounded by one update burst per round trip; push is not:
    # push sustains most of the frame rate, pull collapses to ~RTT rate.
    assert push > 3 * pull
    assert push > 0.6
    assert pull < 0.4
