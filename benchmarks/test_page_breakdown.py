"""Per-page breakdown (the Section 8.3 page-by-page discussion).

The paper compares THINC with Sun Ray, VNC and NX page by page and
finds that THINC "was faster on all web pages except those that
primarily consisted of a single large image": on those, THINC's
PNG-model RAW compression costs server time that cheap codecs skip and
the LAN absorbs the extra bytes.  The same crossover must appear here —
our page set makes every ninth page image-heavy.
"""

from conftest import WEB_PAGES

from repro.bench.reporting import format_ms, format_table
from repro.bench.testbed import run_web_benchmark
from repro.net import LAN_DESKTOP
from repro.workloads.web import make_page_set

PAGES = max(WEB_PAGES, 9)  # ensure at least one image-heavy page
SYSTEMS = ["THINC", "VNC", "SunRay"]


def run_page_breakdown():
    return {name: run_web_benchmark(name, LAN_DESKTOP, "lan",
                                    page_count=PAGES)
            for name in SYSTEMS}


def test_page_breakdown(benchmark, show):
    runs = benchmark.pedantic(run_page_breakdown, rounds=1, iterations=1)
    pages = make_page_set(count=PAGES)

    rows = []
    for index in range(PAGES):
        kind = "single large image" if pages[index].image_heavy else "mixed"
        rows.append([index, kind] + [
            format_ms(runs[name].pages[index].latency) for name in SYSTEMS])
    show(format_table(
        "Page-by-page latency breakdown (LAN Desktop)",
        ["page", "content"] + SYSTEMS, rows))

    heavy = [i for i in range(PAGES) if pages[i].image_heavy]
    mixed = [i for i in range(PAGES) if not pages[i].image_heavy]
    assert heavy and mixed

    def latency(name, i):
        return runs[name].pages[i].latency

    # THINC is the fastest on (at least the overwhelming majority of)
    # mixed-content pages...
    wins = sum(1 for i in mixed
               if all(latency("THINC", i) <= latency(other, i)
                      for other in ("VNC", "SunRay")))
    assert wins >= len(mixed) - 1

    # ...but the cheap-codec systems catch up or win on the pages that
    # are primarily one large image (compression time dominates).
    for i in heavy:
        margin_heavy = min(latency(other, i) for other in ("VNC", "SunRay")) \
            / latency("THINC", i)
        # THINC's advantage collapses (or inverts) on these pages.
        margins_mixed = [
            min(latency(other, j) for other in ("VNC", "SunRay"))
            / latency("THINC", j) for j in mixed]
        assert margin_heavy < sum(margins_mixed) / len(margins_mixed)
